//! The traffic-shaper interface shared by NTS, STS, and DTS.
//!
//! A traffic shaper (paper §4.2) decides *when* a node's aggregated data
//! report is handed to the MAC and *what* send/reception times Safe Sleep
//! should expect next. The three implementations differ only in how they
//! compute those times:
//!
//! | shaper | expected times | adaptation |
//! |--------|----------------|------------|
//! | [NTS](crate::nts::Nts) | `s(k) = r(k) = φ + k·P` everywhere | none (greedy forwarding) |
//! | [STS](crate::sts::Sts) | per-rank slots of width `l = D/M` | re-derive on rank change |
//! | [DTS](crate::dts::Dts) | Release-Guard-style, self-tuned | phase shifts + piggybacked updates |
//!
//! The shaper is a pure state machine: the node stack calls it on query
//! registration, report readiness, send completion, reception, timeout,
//! and topology change, and forwards the returned expectations to
//! [`SafeSleep`](crate::safe_sleep::SafeSleep).

use std::fmt;

use essat_net::ids::NodeId;
use essat_query::model::Query;
use essat_sim::time::SimTime;

/// Snapshot of this node's place in the routing tree, passed to shaper
/// calls that depend on it.
#[derive(Debug, Clone, Copy)]
pub struct TreeInfo<'a> {
    /// This node's rank `d` (max hop count to a descendant; leaves 0).
    pub own_rank: u32,
    /// The tree-wide maximum rank `M` (the root's rank).
    pub max_rank: u32,
    /// This node's level (hop count from the root; the root is 0).
    pub own_level: u32,
    /// The deepest level in the tree (TinyDB/TAG-style shapers slot by
    /// level rather than rank).
    pub max_level: u32,
    /// This node's children with their ranks, sorted by node id.
    pub children: &'a [(NodeId, u32)],
}

impl<'a> TreeInfo<'a> {
    /// Rank of `child`.
    ///
    /// # Panics
    ///
    /// Panics if `child` is not among this node's children.
    pub fn child_rank(&self, child: NodeId) -> u32 {
        self.children
            .iter()
            .find(|(c, _)| *c == child)
            .map(|(_, r)| *r)
            .unwrap_or_else(|| panic!("{child} is not a child of this node"))
    }

    /// A leaf's view (no children, rank 0, sitting at the deepest
    /// level).
    pub fn leaf(max_rank: u32) -> TreeInfo<'static> {
        TreeInfo {
            own_rank: 0,
            max_rank,
            own_level: max_rank,
            max_level: max_rank,
            children: &[],
        }
    }
}

/// Initial Safe Sleep expectations for a freshly registered query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectations {
    /// The node's first expected send time `s(0)` (`None` for the root,
    /// which never forwards).
    pub snext: Option<SimTime>,
    /// Per-child first expected reception times `r(0, c)`.
    pub rnext: Vec<(NodeId, SimTime)>,
}

/// When to hand a ready report to the MAC, and what to piggyback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Release {
    /// Earliest instant the report may be submitted to the MAC
    /// (`max(ready_at, expected send time)` for buffering shapers;
    /// `ready_at` exactly for NTS and for DTS phase shifts).
    pub send_at: SimTime,
    /// A phase update to embed in the packet (DTS only): the sender's
    /// next expected send time `s(k+1)`, which becomes the parent's
    /// `r(k+1)`.
    pub piggyback: Option<SimTime>,
}

/// The paper's three shaper families, used for configuration and display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShaperKind {
    /// No traffic shaping (§4.2.1).
    Nts,
    /// Static traffic shaper (§4.2.2).
    Sts,
    /// Dynamic traffic shaper (§4.2.3).
    Dts,
}

impl fmt::Display for ShaperKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ShaperKind::Nts => "NTS",
            ShaperKind::Sts => "STS",
            ShaperKind::Dts => "DTS",
        };
        f.write_str(s)
    }
}

/// A traffic shaper as defined in §4.2.
///
/// Implementations must be deterministic: identical call sequences must
/// produce identical schedules (the engine relies on this for
/// reproducible runs). `Send` is required so whole simulations can be
/// farmed out across threads by the experiment runner.
pub trait TrafficShaper: fmt::Debug + Send {
    /// Which family this shaper belongs to.
    fn kind(&self) -> ShaperKind;

    /// A query was registered at this node. Returns the initial
    /// expectations for Safe Sleep. `is_root` suppresses the send
    /// expectation.
    fn register(&mut self, q: &Query, tree: &TreeInfo<'_>, is_root: bool) -> Expectations;

    /// The query was deregistered; drop its state.
    fn deregister(&mut self, q: &Query);

    /// Round `k`'s aggregated report became ready at `ready_at` (all
    /// children contributed, or the collection timed out). Returns when
    /// to hand it to the MAC and the optional piggybacked phase update.
    fn release(&mut self, q: &Query, k: u64, ready_at: SimTime, tree: &TreeInfo<'_>) -> Release;

    /// Round `k`'s report finished sending at `now`. Returns the next
    /// expected send time `s(k+1)` for Safe Sleep.
    fn after_send(&mut self, q: &Query, k: u64, now: SimTime, tree: &TreeInfo<'_>) -> SimTime;

    /// The node's scheduler decided round `k` will not run locally at
    /// all (a scenario traffic-phase quiet round: nothing sampled,
    /// collected, or sent). Advance any send-side state past the round
    /// and return the send expectation for the next round. The default
    /// delegates to [`TrafficShaper::after_send`], which is exact for
    /// shapers whose send schedule is a pure function of the round
    /// index (NTS, STS, TAG); shapers with stateful release/send
    /// coupling (DTS) override it.
    fn round_skipped(&mut self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        self.after_send(q, k, q.round_start(k), tree)
    }

    /// A report for round `k` arrived from `child` at `now`, possibly
    /// carrying a piggybacked phase update. Returns the next expected
    /// reception time `r(k+1, child)` for Safe Sleep.
    fn after_receive(
        &mut self,
        q: &Query,
        child: NodeId,
        k: u64,
        now: SimTime,
        piggyback: Option<SimTime>,
        tree: &TreeInfo<'_>,
    ) -> SimTime;

    /// The absolute deadline for collecting round `k`'s child reports
    /// (§4.3 "selecting timeout values"); at this instant the node seals
    /// a partial aggregate and forwards it.
    fn collection_deadline(&self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime;

    /// `child` failed to deliver its round-`k` report by the collection
    /// deadline. Returns the updated expected reception time for Safe
    /// Sleep (the child's report `k+1`).
    fn child_timed_out(&mut self, q: &Query, child: NodeId, k: u64, tree: &TreeInfo<'_>)
        -> SimTime;

    /// The node's position in the tree changed (new parent / new ranks,
    /// §4.3) at time `now`. Returns fresh expectations when the shaper's
    /// schedule depends on the topology (STS), or `None` when no update
    /// is needed (NTS; DTS resynchronises via its next phase update
    /// instead).
    fn on_topology_change(
        &mut self,
        q: &Query,
        tree: &TreeInfo<'_>,
        is_root: bool,
        now: SimTime,
    ) -> Option<Expectations>;

    /// A peer asked for an explicit phase update (DTS resynchronisation
    /// after loss). Default: ignored.
    fn on_phase_update_request(&mut self, _q: &Query) {}

    /// `child` was declared failed or re-parented away: drop any state
    /// tied to it. Default: nothing (NTS is stateless).
    fn remove_child(&mut self, _q: &Query, _child: NodeId) {}

    /// True if this shaper resynchronises through phase updates and
    /// therefore wants a phase-update request after detected losses
    /// (DTS).
    fn wants_phase_resync(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_info_child_rank_lookup() {
        let children = [(NodeId::new(3), 1), (NodeId::new(5), 0)];
        let info = TreeInfo {
            own_rank: 2,
            max_rank: 4,
            own_level: 2,
            max_level: 4,
            children: &children,
        };
        assert_eq!(info.child_rank(NodeId::new(3)), 1);
        assert_eq!(info.child_rank(NodeId::new(5)), 0);
    }

    #[test]
    #[should_panic(expected = "not a child")]
    fn tree_info_unknown_child_panics() {
        let info = TreeInfo::leaf(3);
        let _ = info.child_rank(NodeId::new(9));
    }

    #[test]
    fn leaf_info_shape() {
        let info = TreeInfo::leaf(5);
        assert_eq!(info.own_rank, 0);
        assert_eq!(info.max_rank, 5);
        assert!(info.children.is_empty());
    }

    #[test]
    fn kind_display() {
        assert_eq!(ShaperKind::Nts.to_string(), "NTS");
        assert_eq!(ShaperKind::Sts.to_string(), "STS");
        assert_eq!(ShaperKind::Dts.to_string(), "DTS");
    }
}
