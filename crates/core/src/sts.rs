//! STS — Static Traffic Shaper (§4.2.2).
//!
//! STS paces a report's multi-hop journey across a deadline `D` by
//! allocating one slot of width `l = D / M` to each rank (`M` = maximum
//! rank of the tree). A node of rank `d` expects each child `c`'s report
//! at the child's own send slot and sends its aggregate at the end of its
//! own slot:
//!
//! ```text
//! r(k, c) = φ + k·P + l·rank(c)        (reception = child's send slot)
//! s(k)    = φ + k·P + l·d
//! ```
//!
//! Early reports are buffered until `s(k)`; late ones are sent
//! immediately. The paper's analysis (eq. 2–3) predicts the trade-off the
//! harness reproduces as Figure 2: query latency `L_q = M·max(l, T_agg)`,
//! while the idle listening `T_recv` shrinks as `l` grows toward `T_agg`
//! and is flat beyond it — so the best deadline sits at the knee
//! `l ≈ T_agg`, which is hard to know in advance. That tuning burden is
//! DTS's reason to exist.
//!
//! Because the schedule depends on ranks, a topology change (§4.3) forces
//! the affected subtree to recompute its expectations —
//! [`Sts::on_topology_change`] re-derives them from the current tree.

use std::collections::BTreeMap;

use essat_net::ids::NodeId;
use essat_query::model::{Query, QueryId};
use essat_sim::time::{SimDuration, SimTime};

use crate::shaper::{Expectations, Release, ShaperKind, TrafficShaper, TreeInfo};

/// Configuration for [`Sts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StsConfig {
    /// The §4.3 timeout margin `t_TO`: the collection deadline for round
    /// `k` is `s(k) + l − t_TO` (clamped to at least `s(k)`).
    pub timeout_margin: SimDuration,
    /// Reception-expectation granularity. The paper states both forms:
    /// the closed form "r(k) = φ + k·P + l·(d−1)" (one slot for *all*
    /// children, at the node's rank minus one) and the invariant
    /// "expected reception time … equal to the child's expected send
    /// time" (per-child slots). Per-child is strictly tighter — a parent
    /// wakes for each child exactly at that child's slot — and is the
    /// default; the per-rank form is kept for the ablation bench.
    pub per_rank_reception: bool,
}

impl Default for StsConfig {
    fn default() -> Self {
        StsConfig {
            timeout_margin: SimDuration::ZERO,
            per_rank_reception: false,
        }
    }
}

/// The STS shaper.
///
/// Tracks the next unsent / unreceived round per query so that a
/// topology change can re-derive expectations for exactly the rounds
/// still ahead.
#[derive(Debug, Clone, Default)]
pub struct Sts {
    config: StsConfig,
    next_send_round: BTreeMap<QueryId, u64>,
    next_recv_round: BTreeMap<(QueryId, NodeId), u64>,
}

impl Sts {
    /// Creates an STS shaper with the default configuration.
    pub fn new() -> Self {
        Sts::with_config(StsConfig::default())
    }

    /// Creates an STS shaper with an explicit configuration.
    pub fn with_config(config: StsConfig) -> Self {
        Sts {
            config,
            next_send_round: BTreeMap::new(),
            next_recv_round: BTreeMap::new(),
        }
    }

    /// The per-rank slot width `l = D / M` (with `M` clamped to ≥ 1 so a
    /// single-node tree stays well-defined).
    pub fn local_deadline(q: &Query, tree: &TreeInfo<'_>) -> SimDuration {
        q.deadline / tree.max_rank.max(1) as u64
    }

    fn send_slot(q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        q.round_start(k) + Self::local_deadline(q, tree) * tree.own_rank as u64
    }

    fn recv_slot(&self, q: &Query, k: u64, child_rank: u32, tree: &TreeInfo<'_>) -> SimTime {
        let slot_rank = if self.config.per_rank_reception {
            // Paper's closed form: one expectation at l·(d−1) for every
            // child of a rank-d node.
            tree.own_rank.saturating_sub(1)
        } else {
            child_rank
        };
        q.round_start(k) + Self::local_deadline(q, tree) * slot_rank as u64
    }
}

impl TrafficShaper for Sts {
    fn kind(&self) -> ShaperKind {
        ShaperKind::Sts
    }

    fn register(&mut self, q: &Query, tree: &TreeInfo<'_>, is_root: bool) -> Expectations {
        self.next_send_round.insert(q.id, 0);
        for &(c, _) in tree.children {
            self.next_recv_round.insert((q.id, c), 0);
        }
        Expectations {
            snext: (!is_root).then(|| Self::send_slot(q, 0, tree)),
            rnext: tree
                .children
                .iter()
                .map(|&(c, r)| (c, self.recv_slot(q, 0, r, tree)))
                .collect(),
        }
    }

    fn deregister(&mut self, q: &Query) {
        self.next_send_round.remove(&q.id);
        self.next_recv_round.retain(|&(qq, _), _| qq != q.id);
    }

    fn release(&mut self, q: &Query, k: u64, ready_at: SimTime, tree: &TreeInfo<'_>) -> Release {
        // Buffer early reports until the send slot; send late ones now.
        Release {
            send_at: ready_at.max(Self::send_slot(q, k, tree)),
            piggyback: None,
        }
    }

    fn after_send(&mut self, q: &Query, k: u64, _now: SimTime, tree: &TreeInfo<'_>) -> SimTime {
        self.next_send_round.insert(q.id, k + 1);
        Self::send_slot(q, k + 1, tree)
    }

    fn after_receive(
        &mut self,
        q: &Query,
        child: NodeId,
        k: u64,
        _now: SimTime,
        _piggyback: Option<SimTime>,
        tree: &TreeInfo<'_>,
    ) -> SimTime {
        self.next_recv_round.insert((q.id, child), k + 1);
        self.recv_slot(q, k + 1, tree.child_rank(child), tree)
    }

    fn collection_deadline(&self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        let s_k = Self::send_slot(q, k, tree);
        let grace = Self::local_deadline(q, tree).saturating_sub(self.config.timeout_margin);
        s_k + grace
    }

    fn child_timed_out(
        &mut self,
        q: &Query,
        child: NodeId,
        k: u64,
        tree: &TreeInfo<'_>,
    ) -> SimTime {
        self.next_recv_round.insert((q.id, child), k + 1);
        self.recv_slot(q, k + 1, tree.child_rank(child), tree)
    }

    fn remove_child(&mut self, q: &Query, child: NodeId) {
        self.next_recv_round.remove(&(q.id, child));
    }

    fn on_topology_change(
        &mut self,
        q: &Query,
        tree: &TreeInfo<'_>,
        is_root: bool,
        _now: SimTime,
    ) -> Option<Expectations> {
        // Ranks changed: re-derive every pending expectation from the
        // current tree (the §4.3 cost of STS).
        let k_send = self.next_send_round.get(&q.id).copied().unwrap_or(0);
        let rnext = tree
            .children
            .iter()
            .map(|&(c, r)| {
                let k = self
                    .next_recv_round
                    .entry((q.id, c))
                    .or_insert(k_send)
                    .to_owned();
                (c, self.recv_slot(q, k, r, tree))
            })
            .collect();
        Some(Expectations {
            snext: (!is_root).then(|| Self::send_slot(q, k_send, tree)),
            rnext,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essat_query::aggregate::AggregateOp;

    fn q() -> Query {
        // P = D = 200 ms, φ = 1 s.
        Query::periodic(
            QueryId::new(0),
            SimDuration::from_millis(200),
            SimTime::from_secs(1),
            AggregateOp::Sum,
        )
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// rank-2 node in an M=4 tree with a rank-0 and a rank-1 child.
    fn tree_info(children: &[(NodeId, u32)]) -> TreeInfo<'_> {
        TreeInfo {
            own_rank: 2,
            max_rank: 4,
            own_level: 2,
            max_level: 4,
            children,
        }
    }

    #[test]
    fn slots_follow_ranks() {
        // l = 200 / 4 = 50 ms.
        let children = [(n(1), 0), (n(2), 1)];
        let tree = tree_info(&children);
        let mut sts = Sts::new();
        let e = sts.register(&q(), &tree, false);
        // s(0) = φ + l*2 = 1.1 s.
        assert_eq!(e.snext, Some(ms(1100)));
        // r(0, c) at each child's own slot: rank 0 -> φ, rank 1 -> φ+50ms.
        assert_eq!(e.rnext, vec![(n(1), ms(1000)), (n(2), ms(1050))]);
    }

    #[test]
    fn early_reports_buffered_late_sent_now() {
        let children = [(n(1), 0)];
        let tree = tree_info(&children);
        let mut sts = Sts::new();
        sts.register(&q(), &tree, false);
        // Ready 30 ms into the round; slot is at +100 ms.
        let rel = sts.release(&q(), 0, ms(1030), &tree);
        assert_eq!(rel.send_at, ms(1100), "buffered to s(0)");
        assert_eq!(rel.piggyback, None);
        // Late: ready after the slot.
        let rel2 = sts.release(&q(), 1, ms(1350), &tree);
        assert_eq!(rel2.send_at, ms(1350), "late report sent immediately");
    }

    #[test]
    fn after_send_and_receive_advance_one_period() {
        let children = [(n(1), 1)];
        let tree = tree_info(&children);
        let mut sts = Sts::new();
        sts.register(&q(), &tree, false);
        assert_eq!(sts.after_send(&q(), 0, ms(1100), &tree), ms(1300));
        assert_eq!(
            sts.after_receive(&q(), n(1), 0, ms(1050), None, &tree),
            ms(1250)
        );
    }

    #[test]
    fn nts_equivalence_at_zero_local_deadline() {
        // The paper notes STS with l = 0 behaves like NTS. l -> 0 when
        // D -> 0 is impossible (deadline must be positive), but a huge M
        // makes l one nanosecond — slots collapse to the round start.
        let qq = q();
        let children = [(n(1), 0)];
        let tree = TreeInfo {
            own_rank: 2,
            max_rank: u32::MAX,
            own_level: (u32::MAX).saturating_sub(2),
            max_level: u32::MAX,
            children: &children,
        };
        let mut sts = Sts::new();
        let e = sts.register(&qq, &tree, false);
        assert_eq!(e.snext, Some(ms(1000)));
        assert_eq!(e.rnext[0].1, ms(1000));
    }

    #[test]
    fn collection_deadline_one_slot_after_send() {
        let children = [(n(1), 1)];
        let tree = tree_info(&children);
        let sts = Sts::new();
        // s(0) = 1.1 s, l = 50 ms, margin 0 -> 1.15 s.
        assert_eq!(sts.collection_deadline(&q(), 0, &tree), ms(1150));
        let tight = Sts::with_config(StsConfig {
            timeout_margin: SimDuration::from_millis(20),
            ..StsConfig::default()
        });
        assert_eq!(tight.collection_deadline(&q(), 0, &tree), ms(1130));
        // Margin larger than l clamps at s(k).
        let clamped = Sts::with_config(StsConfig {
            timeout_margin: SimDuration::from_secs(1),
            ..StsConfig::default()
        });
        assert_eq!(clamped.collection_deadline(&q(), 0, &tree), ms(1100));
    }

    #[test]
    fn topology_change_rederives_pending_rounds() {
        let children = [(n(1), 0)];
        let tree = tree_info(&children);
        let mut sts = Sts::new();
        sts.register(&q(), &tree, false);
        // Progress: sent round 0 and 1, received child round 0.
        sts.after_send(&q(), 0, ms(1100), &tree);
        sts.after_send(&q(), 1, ms(1300), &tree);
        sts.after_receive(&q(), n(1), 0, ms(1010), None, &tree);
        // The node's rank grows to 3 in an M=5 tree (l = 40 ms) and the
        // child's rank to 2.
        let new_children = [(n(1), 2)];
        let new_tree = TreeInfo {
            own_rank: 3,
            max_rank: 5,
            own_level: 2,
            max_level: 5,
            children: &new_children,
        };
        let e = sts
            .on_topology_change(&q(), &new_tree, false, ms(0))
            .expect("STS must refresh");
        // Next send round is 2: s(2) = φ + 2P + 3l = 1.0 + 0.4 + 0.12.
        assert_eq!(e.snext, Some(ms(1520)));
        // Next recv round for child is 1: φ + P + 2l = 1.0 + 0.2 + 0.08.
        assert_eq!(e.rnext, vec![(n(1), ms(1280))]);
    }

    #[test]
    fn topology_change_with_new_child_defaults_to_send_round() {
        let tree_before = TreeInfo {
            own_rank: 1,
            max_rank: 3,
            own_level: 2,
            max_level: 3,
            children: &[],
        };
        let mut sts = Sts::new();
        sts.register(&q(), &tree_before, false);
        sts.after_send(&q(), 0, ms(1000), &tree_before);
        // A child re-parents to us.
        let new_children = [(n(7), 0)];
        let new_tree = TreeInfo {
            own_rank: 1,
            max_rank: 3,
            own_level: 2,
            max_level: 3,
            children: &new_children,
        };
        let e = sts
            .on_topology_change(&q(), &new_tree, false, ms(0))
            .unwrap();
        // Child expectation starts at our next send round (1); the new
        // child has rank 0, so its slot offset is zero.
        assert_eq!(e.rnext, vec![(n(7), ms(1200))]);
    }

    #[test]
    fn per_rank_reception_ablation() {
        // Rank-2 node, children of ranks 0 and 1, l = 50 ms.
        let children = [(n(1), 0), (n(2), 1)];
        let tree = tree_info(&children);
        let mut per_rank = Sts::with_config(StsConfig {
            per_rank_reception: true,
            ..StsConfig::default()
        });
        let e = per_rank.register(&q(), &tree, false);
        // Both children expected at l·(d−1) = φ + 50 ms — the paper's
        // closed form.
        assert_eq!(e.rnext, vec![(n(1), ms(1050)), (n(2), ms(1050))]);
        // The per-child default is tighter for the rank-0 child.
        let mut per_child = Sts::new();
        let e2 = per_child.register(&q(), &tree, false);
        assert!(e2.rnext[0].1 < e.rnext[0].1);
        assert_eq!(e2.rnext[1].1, e.rnext[1].1);
    }

    #[test]
    fn deregister_clears_state() {
        let children = [(n(1), 0)];
        let tree = tree_info(&children);
        let mut sts = Sts::new();
        sts.register(&q(), &tree, false);
        sts.deregister(&q());
        assert!(sts.next_send_round.is_empty());
        assert!(sts.next_recv_round.is_empty());
    }

    #[test]
    fn latency_model_eq2() {
        // L_q = M * max(l, T_agg): with l = 50 ms >= T_agg, the last hop
        // sends at φ + M*l, i.e. latency M*l relative to round start.
        let children: [(NodeId, u32); 0] = [];
        let root_tree = TreeInfo {
            own_rank: 4,
            max_rank: 4,
            own_level: 0,
            max_level: 4,
            children: &children,
        };
        let s_root = Sts::send_slot(&q(), 0, &root_tree);
        assert_eq!(s_root - ms(1000), SimDuration::from_millis(200));
    }
}
