//! NTS — No Traffic Shaping (§4.2.1).
//!
//! The degenerate shaper: every node shares the same expected send and
//! reception times, `s(k) = r(k) = φ + k·P`, and aggregated reports are
//! forwarded greedily the moment they are ready. NTS introduces **no
//! delay penalty**, but a node of rank `d` stays awake from the start of
//! each round until the reports have climbed `d` hops:
//!
//! ```text
//! T_recv(d) = (d − 1)·T_agg + T_collect     (paper eq. 1, d > 0)
//! ```
//!
//! so idle listening — and therefore duty cycle — grows linearly with
//! rank (reproduced in the paper's Figure 5), and nodes near the root
//! exhaust their batteries first.

use essat_net::ids::NodeId;
use essat_query::model::Query;
use essat_sim::time::{SimDuration, SimTime};

use crate::shaper::{Expectations, Release, ShaperKind, TrafficShaper, TreeInfo};

/// The NTS shaper. Stateless: every expectation is a closed form of the
/// query parameters, which is also why the paper calls it the most robust
/// of the three (§4.3 — no state to repair on loss or topology change).
#[derive(Debug, Clone, Copy, Default)]
pub struct Nts;

impl Nts {
    /// Creates an NTS shaper.
    pub fn new() -> Self {
        Nts
    }

    /// The shared schedule point `φ + k·P`.
    fn slot(q: &Query, k: u64) -> SimTime {
        q.round_start(k)
    }

    /// The §4.3 timeout: `t_TO(d) = (d + 1) · D / M` after round start.
    fn timeout_offset(q: &Query, tree: &TreeInfo<'_>) -> SimDuration {
        let m = tree.max_rank.max(1) as u64;
        (q.deadline / m) * (tree.own_rank as u64 + 1)
    }
}

impl TrafficShaper for Nts {
    fn kind(&self) -> ShaperKind {
        ShaperKind::Nts
    }

    fn register(&mut self, q: &Query, tree: &TreeInfo<'_>, is_root: bool) -> Expectations {
        Expectations {
            snext: (!is_root).then(|| Self::slot(q, 0)),
            rnext: tree
                .children
                .iter()
                .map(|&(c, _)| (c, Self::slot(q, 0)))
                .collect(),
        }
    }

    fn deregister(&mut self, _q: &Query) {}

    fn release(&mut self, _q: &Query, _k: u64, ready_at: SimTime, _tree: &TreeInfo<'_>) -> Release {
        // Greedy: forward immediately; never piggyback.
        Release {
            send_at: ready_at,
            piggyback: None,
        }
    }

    fn after_send(&mut self, q: &Query, k: u64, _now: SimTime, _tree: &TreeInfo<'_>) -> SimTime {
        Self::slot(q, k + 1)
    }

    fn after_receive(
        &mut self,
        q: &Query,
        _child: NodeId,
        k: u64,
        _now: SimTime,
        _piggyback: Option<SimTime>,
        _tree: &TreeInfo<'_>,
    ) -> SimTime {
        Self::slot(q, k + 1)
    }

    fn collection_deadline(&self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        Self::slot(q, k) + Self::timeout_offset(q, tree)
    }

    fn child_timed_out(
        &mut self,
        q: &Query,
        _child: NodeId,
        k: u64,
        _tree: &TreeInfo<'_>,
    ) -> SimTime {
        Self::slot(q, k + 1)
    }

    fn on_topology_change(
        &mut self,
        _q: &Query,
        _tree: &TreeInfo<'_>,
        _is_root: bool,
        _now: SimTime,
    ) -> Option<Expectations> {
        // NTS expectations depend only on (φ, P): nothing to update.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essat_query::aggregate::AggregateOp;
    use essat_query::model::QueryId;

    fn q() -> Query {
        Query::periodic(
            QueryId::new(0),
            SimDuration::from_millis(200),
            SimTime::from_secs(1),
            AggregateOp::Sum,
        )
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn register_shares_round_start_everywhere() {
        let mut nts = Nts::new();
        let children = [(n(1), 0), (n(2), 1)];
        let tree = TreeInfo {
            own_rank: 2,
            max_rank: 4,
            own_level: 2,
            max_level: 4,
            children: &children,
        };
        let e = nts.register(&q(), &tree, false);
        assert_eq!(e.snext, Some(SimTime::from_secs(1)));
        assert_eq!(
            e.rnext,
            vec![(n(1), SimTime::from_secs(1)), (n(2), SimTime::from_secs(1))]
        );
        let e_root = nts.register(&q(), &tree, true);
        assert_eq!(e_root.snext, None);
    }

    #[test]
    fn release_is_immediate() {
        let mut nts = Nts::new();
        let tree = TreeInfo::leaf(4);
        let ready = SimTime::from_millis(1234);
        let r = nts.release(&q(), 3, ready, &tree);
        assert_eq!(r.send_at, ready);
        assert_eq!(r.piggyback, None);
    }

    #[test]
    fn expectations_advance_by_period() {
        let mut nts = Nts::new();
        let tree = TreeInfo::leaf(4);
        let s1 = nts.after_send(&q(), 0, SimTime::from_secs(1), &tree);
        assert_eq!(s1, SimTime::from_millis(1200));
        let r5 = nts.after_receive(&q(), n(1), 4, SimTime::from_secs(2), None, &tree);
        assert_eq!(r5, SimTime::from_secs(2));
        // Piggybacks are ignored by NTS.
        let r = nts.after_receive(
            &q(),
            n(1),
            0,
            SimTime::from_secs(1),
            Some(SimTime::MAX),
            &tree,
        );
        assert_eq!(r, SimTime::from_millis(1200));
    }

    #[test]
    fn timeout_grows_with_rank() {
        let nts = Nts;
        let t_leafish = {
            let tree = TreeInfo {
                own_rank: 1,
                max_rank: 4,
                own_level: 3,
                max_level: 4,
                children: &[],
            };
            nts.collection_deadline(&q(), 0, &tree)
        };
        let t_root = {
            let tree = TreeInfo {
                own_rank: 4,
                max_rank: 4,
                own_level: 0,
                max_level: 4,
                children: &[],
            };
            nts.collection_deadline(&q(), 0, &tree)
        };
        // D = P = 200 ms, M = 4 -> l = 50 ms; rank 1 -> 100 ms, rank 4 -> 250 ms.
        assert_eq!(t_leafish, SimTime::from_millis(1100));
        assert_eq!(t_root, SimTime::from_millis(1250));
        assert!(t_root > t_leafish);
    }

    #[test]
    fn child_timeout_advances_one_round() {
        let mut nts = Nts::new();
        let tree = TreeInfo::leaf(4);
        assert_eq!(
            nts.child_timed_out(&q(), n(1), 2, &tree),
            SimTime::from_millis(1600)
        );
    }

    #[test]
    fn topology_change_needs_nothing() {
        let mut nts = Nts::new();
        let tree = TreeInfo::leaf(2);
        assert!(nts
            .on_topology_change(&q(), &tree, false, SimTime::ZERO)
            .is_none());
        assert!(!nts.wants_phase_resync());
    }

    #[test]
    fn single_node_tree_timeout_defined() {
        // M = 0 must not divide by zero.
        let nts = Nts;
        let tree = TreeInfo {
            own_rank: 0,
            max_rank: 0,
            own_level: 0,
            max_level: 0,
            children: &[],
        };
        let d = nts.collection_deadline(&q(), 0, &tree);
        assert_eq!(d, SimTime::from_millis(1200));
    }
}
