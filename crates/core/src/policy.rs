//! The pluggable power-management layer: [`PowerPolicy`].
//!
//! The paper's central architectural claim is that application timing
//! semantics are a *policy* sitting between the MAC and the query
//! agent. This module makes that seam explicit: the simulator's node
//! stack drives a `PowerPolicy` trait object through a narrow
//! event-driven interface (query registration, round lifecycle,
//! frame rx/tx completions, policy timers, sleep checkpoints), and the
//! policy answers with typed [`PolicyAction`]s that the executor
//! applies mechanically — it never branches on *which* protocol is
//! running.
//!
//! The ESSAT protocols (NTS-SS, STS-SS, DTS-SS, and the related-work
//! TAG-SS) are all instances of one policy, [`EssatPolicy`]: a
//! [`TrafficShaper`] deciding release times and feeding expectations to
//! a [`SafeSleep`] scheduler. The comparison baselines (SYNC, PSM,
//! SPAN's always-on backbone) implement the same trait in
//! `essat-baselines`, and out-of-tree experiments can plug in their own
//! implementation through the simulator's policy factory without
//! touching the executor.

use std::fmt;

use essat_net::frame::Frame;
use essat_net::ids::NodeId;
use essat_query::model::{Query, QueryId};
use essat_sim::time::{SimDuration, SimTime};

use crate::safe_sleep::{SafeSleep, SleepDecision};
use crate::shaper::{Expectations, Release, TrafficShaper, TreeInfo};

/// Timers a policy may arm through [`PolicyAction::SetTimer`].
///
/// The executor routes expiries back into [`PowerPolicy::on_timer`]
/// without interpreting them, except for *chain* timers (schedule
/// chains that survive across events), which it guards with a
/// generation counter so churn recovery can invalidate a stale chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyTimer {
    /// SYNC schedule edge (active-window start or end).
    SyncEdge,
    /// PSM beacon boundary.
    PsmBeacon,
    /// End of the PSM ATIM window.
    PsmAtimEnd,
    /// End of the PSM advertisement window.
    PsmAdvEnd,
    /// Release PSM-buffered frames to a confirmed destination.
    PsmRelease {
        /// The confirmed destination.
        dest: NodeId,
    },
    /// Self-healing tree-repair backoff timer. Unlike every other
    /// variant this one is armed by the *executor* (when a §4.3
    /// failure detector trips), not by a policy; it rides the same
    /// `Ev::Policy` plumbing so its `EventId` handle obeys the
    /// cancel-on-disarm discipline, and the executor intercepts its
    /// expiry before the policy dispatch.
    Repair {
        /// The suspected-failed neighbour the repair targets.
        target: NodeId,
    },
    /// A timer belonging to an out-of-tree policy. The executor never
    /// interprets `key`; `chain` selects the generation-guarded
    /// schedule-chain semantics (see [`PolicyTimer::is_chain`]).
    Custom {
        /// Policy-defined discriminator (a policy with several timers
        /// tells them apart by key).
        key: u16,
        /// True for self-perpetuating schedule chains that churn
        /// recovery must be able to invalidate.
        chain: bool,
    },
}

impl PolicyTimer {
    /// True for self-perpetuating schedule chains (SYNC edges, PSM
    /// beacons, chain-flagged custom timers): the executor drops
    /// expiries whose generation no longer matches the node's chain
    /// generation, so a churn-revived node can re-arm its chain without
    /// duplicating it.
    pub fn is_chain(self) -> bool {
        matches!(
            self,
            PolicyTimer::SyncEdge
                | PolicyTimer::PsmBeacon
                | PolicyTimer::Custom { chain: true, .. }
        )
    }
}

/// What a policy asks the executor to do.
///
/// Actions are executed strictly in the order the policy emitted them;
/// the executor adds no reordering, so a policy controls the relative
/// order of same-instant events it causes.
#[derive(Debug)]
pub enum PolicyAction<P> {
    /// Begin waking the radio (no-op if already active, queued if
    /// mid-transition).
    WakeRadio,
    /// Arm a policy timer at an absolute time.
    SetTimer {
        /// Which timer.
        timer: PolicyTimer,
        /// Absolute expiry time.
        at: SimTime,
    },
    /// Send a PSM traffic announcement (ATIM) to `dest`; the executor
    /// builds the protocol frame and hands it to the MAC.
    SendAtim {
        /// Announcement destination.
        dest: NodeId,
    },
    /// Hand a frame to the MAC.
    Enqueue(Frame<P>),
    /// ESSAT sleep: suspend the MAC, switch the radio off, and (when
    /// `wake_at` is set) arm a generation-guarded wake-up. The node's
    /// wake generation is bumped either way, invalidating older
    /// pending wake-ups.
    Sleep {
        /// When to start the OFF→ON transition; `None` sleeps until
        /// externally re-activated (no queries routed through here).
        wake_at: Option<SimTime>,
    },
    /// Baseline sleep at a schedule boundary: suspend and switch off,
    /// leaving the policy's own chain timers to wake the node.
    Suspend,
}

/// Why the executor is giving the policy a chance to sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepTrigger {
    /// Node activity quiesced (MAC went idle, a frame completed, a
    /// round advanced): ESSAT's `checkState` call sites.
    Quiesce,
    /// A protocol-agnostic boundary (end of the setup slot, end of a
    /// forced-awake window): every policy re-evaluates.
    Boundary,
}

/// Read-only snapshot of the node's lower layers, passed to policy
/// entry points that gate on them. The policy sees exactly the
/// predicates the monolithic simulator used to test inline.
#[derive(Debug, Clone, Copy)]
pub struct NodeView {
    /// Current simulation time.
    pub now: SimTime,
    /// The node is dead (failed, churned out, or battery-depleted).
    pub dead: bool,
    /// The radio is in the `Active` state.
    pub radio_active: bool,
    /// The MAC is fully idle (no queued frames, no timers, no backoff).
    pub mac_quiescent: bool,
    /// The MAC may be suspended (weaker than quiescent: baselines park
    /// mid-backoff state across scheduled sleep windows).
    pub mac_can_suspend: bool,
    /// Sleeping is allowed at all: the setup slot is over and no
    /// forced-awake (flooded-setup) window is open.
    pub may_sleep: bool,
    /// The radio's ON→OFF transition time (ESSAT needs headroom to
    /// complete it before a scheduled wake-up).
    pub turn_off: SimDuration,
}

/// A node's power-management personality.
///
/// One instance per node per run. Implementations must be
/// deterministic — identical call sequences must produce identical
/// actions — and `Send`, so whole simulations can be farmed out across
/// threads by the experiment runner.
///
/// Every method has a no-op default; a policy implements only the
/// events it cares about. `P` is the upper-layer payload type carried
/// by frames (policies treat it opaquely).
pub trait PowerPolicy<P>: fmt::Debug + Send {
    /// Stable display name (the protocol label tests and figures key
    /// on, e.g. `"DTS-SS"`).
    fn name(&self) -> &'static str;

    // ------------------------------------------------------------------
    // Query registration and schedule derivation
    // ------------------------------------------------------------------

    /// A query was registered at this node.
    fn on_register(&mut self, _q: &Query, _tree: &TreeInfo<'_>, _is_root: bool) {}

    /// The node left the tree (or re-joins from scratch): drop every
    /// commitment tied to `q`.
    fn forget_query(&mut self, _q: QueryId) {}

    /// The absolute deadline for collecting round `k`'s child reports.
    fn collection_deadline(&self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime;

    // ------------------------------------------------------------------
    // Round lifecycle
    // ------------------------------------------------------------------

    /// Round `k`'s aggregated report became ready at `ready_at`.
    /// Returns when to hand it to the MAC and what to piggyback.
    fn plan_release(
        &mut self,
        q: &Query,
        k: u64,
        ready_at: SimTime,
        tree: &TreeInfo<'_>,
    ) -> Release;

    /// A ready report frame is being dispatched towards `dest`.
    /// The default hands it straight to the MAC; buffering policies
    /// (PSM) park it and announce instead.
    fn dispatch_report(
        &mut self,
        frame: Frame<P>,
        _dest: NodeId,
        _view: &NodeView,
        out: &mut Vec<PolicyAction<P>>,
    ) {
        out.push(PolicyAction::Enqueue(frame));
    }

    /// The node's scheduler decided round `k` will not run locally at
    /// all (a traffic-phase quiet round): advance any schedule state
    /// past it.
    fn on_round_skipped(
        &mut self,
        _q: &Query,
        _k: u64,
        _expected: &[NodeId],
        _is_root: bool,
        _tree: &TreeInfo<'_>,
    ) {
    }

    /// `child` missed the collection deadline for round `k`.
    fn on_child_timeout(&mut self, _q: &Query, _child: NodeId, _k: u64, _tree: &TreeInfo<'_>) {}

    // ------------------------------------------------------------------
    // Frame-level notifications
    // ------------------------------------------------------------------

    /// A round-`k` report arrived from `child`, possibly carrying a
    /// piggybacked phase update.
    fn on_report_received(
        &mut self,
        _q: &Query,
        _child: NodeId,
        _k: u64,
        _now: SimTime,
        _piggyback: Option<SimTime>,
        _tree: &TreeInfo<'_>,
    ) {
    }

    /// Round `k`'s report finished sending successfully.
    fn on_report_sent(&mut self, _q: &Query, _k: u64, _now: SimTime, _tree: &TreeInfo<'_>) {}

    /// Round `k`'s report exhausted its MAC retries.
    fn on_report_failed(&mut self, _q: &Query, _k: u64, _now: SimTime, _tree: &TreeInfo<'_>) {}

    /// An ATIM announcement from `src` arrived.
    fn on_atim_received(&mut self, _src: NodeId) {}

    /// Our ATIM to `dest` was acknowledged: data for it may flow this
    /// beacon interval.
    fn on_atim_sent(&mut self, _dest: NodeId, _view: &NodeView, _out: &mut Vec<PolicyAction<P>>) {}

    /// True if this policy resynchronises through phase updates and
    /// wants a phase-update request after detected losses (DTS).
    fn wants_phase_resync(&self) -> bool {
        false
    }

    /// A peer asked for an explicit phase update.
    fn on_phase_update_request(&mut self, _q: &Query) {}

    // ------------------------------------------------------------------
    // Repair (§4.3)
    // ------------------------------------------------------------------

    /// `child` was declared failed or re-parented away.
    fn on_child_removed(&mut self, _q: &Query, _child: NodeId) {}

    /// The node's place in the tree changed: re-derive the schedule.
    /// `kids_now` is the current child set; `old_kids` the previous one
    /// (`None` if the query had no child list yet).
    #[allow(clippy::too_many_arguments)]
    fn on_topology_change(
        &mut self,
        _q: &Query,
        _tree: &TreeInfo<'_>,
        _is_root: bool,
        _now: SimTime,
        _kids_now: &[NodeId],
        _old_kids: Option<&[NodeId]>,
    ) {
    }

    // ------------------------------------------------------------------
    // Sleep / wake decisions
    // ------------------------------------------------------------------

    /// A chance to switch the radio off. Emit [`PolicyAction::Sleep`]
    /// or [`PolicyAction::Suspend`] to take it; emit nothing to stay
    /// awake. The policy is responsible for checking the `view` guards
    /// relevant to it.
    fn sleep_decision(
        &mut self,
        _trigger: SleepTrigger,
        _view: &NodeView,
        _out: &mut Vec<PolicyAction<P>>,
    ) {
    }

    /// The earliest commitment the node must be awake for, if the
    /// policy tracks any (ESSAT's `min(snext, rnext)`); drives wake-up
    /// re-arming after a repair touched a sleeping node.
    fn earliest_commitment(&self) -> Option<SimTime> {
        None
    }

    // ------------------------------------------------------------------
    // Timers and lifecycle
    // ------------------------------------------------------------------

    /// Actions to schedule at the start of the run. Only
    /// [`PolicyAction::SetTimer`] is meaningful before the first event
    /// (radios start active; there is nothing to wake, sleep, or send
    /// yet), and the executor rejects anything else here — arm the
    /// schedule chains and do everything further in [`Self::on_timer`].
    fn initial_actions(&mut self, _out: &mut Vec<PolicyAction<P>>) {}

    /// A previously armed [`PolicyTimer`] expired.
    fn on_timer(&mut self, _timer: PolicyTimer, _view: &NodeView, _out: &mut Vec<PolicyAction<P>>) {
    }

    /// The node was revived by churn recovery: reset per-interval state
    /// and re-arm schedule chains.
    fn on_revive(&mut self, _now: SimTime, _out: &mut Vec<PolicyAction<P>>) {}
}

/// The ESSAT power manager: a [`TrafficShaper`] deciding release times
/// and feeding send/receive expectations to [`SafeSleep`] (§4.1–4.2).
///
/// NTS-SS, STS-SS, DTS-SS, and TAG-SS are all this policy with a
/// different shaper plugged in.
#[derive(Debug)]
pub struct EssatPolicy {
    name: &'static str,
    shaper: Box<dyn TrafficShaper>,
    ss: SafeSleep,
}

impl EssatPolicy {
    /// Combines a shaper with a Safe Sleep scheduler configured for the
    /// radio's break-even time `t_be` and turn-on time `t_on`. `name`
    /// is the protocol label (`"NTS-SS"`, `"TAG-SS"`, …).
    pub fn new(
        name: &'static str,
        shaper: Box<dyn TrafficShaper>,
        t_be: SimDuration,
        t_on: SimDuration,
    ) -> Self {
        EssatPolicy {
            name,
            shaper,
            ss: SafeSleep::new(t_be, t_on),
        }
    }

    /// The underlying shaper (tests inspect its kind).
    pub fn shaper(&self) -> &dyn TrafficShaper {
        self.shaper.as_ref()
    }

    /// The Safe Sleep scheduler (tests inspect expectations).
    pub fn safe_sleep(&self) -> &SafeSleep {
        &self.ss
    }

    fn apply_expectations(&mut self, q: QueryId, exps: &Expectations, is_root: bool) {
        match exps.snext {
            Some(s) if !is_root => self.ss.update_next_send(q, s),
            _ => self.ss.clear_send(q),
        }
        for &(c, r) in &exps.rnext {
            self.ss.update_next_receive(q, c, r);
        }
    }
}

impl<P> PowerPolicy<P> for EssatPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_register(&mut self, q: &Query, tree: &TreeInfo<'_>, is_root: bool) {
        let exps = self.shaper.register(q, tree, is_root);
        self.apply_expectations(q.id, &exps, is_root);
    }

    fn forget_query(&mut self, q: QueryId) {
        self.ss.remove_query(q);
    }

    fn collection_deadline(&self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        self.shaper.collection_deadline(q, k, tree)
    }

    fn plan_release(
        &mut self,
        q: &Query,
        k: u64,
        ready_at: SimTime,
        tree: &TreeInfo<'_>,
    ) -> Release {
        self.shaper.release(q, k, ready_at, tree)
    }

    fn on_round_skipped(
        &mut self,
        q: &Query,
        k: u64,
        expected: &[NodeId],
        is_root: bool,
        tree: &TreeInfo<'_>,
    ) {
        for &c in expected {
            let rnext = self.shaper.child_timed_out(q, c, k, tree);
            self.ss.update_next_receive(q.id, c, rnext);
        }
        if !is_root {
            let snext = self.shaper.round_skipped(q, k, tree);
            self.ss.update_next_send(q.id, snext);
        }
    }

    fn on_child_timeout(&mut self, q: &Query, child: NodeId, k: u64, tree: &TreeInfo<'_>) {
        let rnext = self.shaper.child_timed_out(q, child, k, tree);
        self.ss.update_next_receive(q.id, child, rnext);
    }

    fn on_report_received(
        &mut self,
        q: &Query,
        child: NodeId,
        k: u64,
        now: SimTime,
        piggyback: Option<SimTime>,
        tree: &TreeInfo<'_>,
    ) {
        let rnext = self.shaper.after_receive(q, child, k, now, piggyback, tree);
        self.ss.update_next_receive(q.id, child, rnext);
    }

    fn on_report_sent(&mut self, q: &Query, k: u64, now: SimTime, tree: &TreeInfo<'_>) {
        let snext = self.shaper.after_send(q, k, now, tree);
        self.ss.update_next_send(q.id, snext);
    }

    fn on_report_failed(&mut self, q: &Query, k: u64, now: SimTime, tree: &TreeInfo<'_>) {
        // The schedule advances regardless (the round is lost).
        let snext = self.shaper.after_send(q, k, now, tree);
        self.ss.update_next_send(q.id, snext);
        // A failed exchange usually means the parent was not listening
        // when we expected it to be — our phases have diverged.
        // Advertise ours on the next report so the parent can re-arm
        // (§4.3).
        if self.shaper.wants_phase_resync() {
            self.shaper.on_phase_update_request(q);
        }
    }

    fn wants_phase_resync(&self) -> bool {
        self.shaper.wants_phase_resync()
    }

    fn on_phase_update_request(&mut self, q: &Query) {
        self.shaper.on_phase_update_request(q);
    }

    fn on_child_removed(&mut self, q: &Query, child: NodeId) {
        self.ss.clear_receive(q.id, child);
        self.shaper.remove_child(q, child);
    }

    fn on_topology_change(
        &mut self,
        q: &Query,
        tree: &TreeInfo<'_>,
        is_root: bool,
        now: SimTime,
        kids_now: &[NodeId],
        old_kids: Option<&[NodeId]>,
    ) {
        self.ss.retain_children(q.id, kids_now);
        match self.shaper.on_topology_change(q, tree, is_root, now) {
            Some(exps) => self.apply_expectations(q.id, &exps, is_root),
            None => {
                // NTS/DTS: existing children keep their current
                // expectations; *new* children (re-parented here) get a
                // conservative one — the start of the current round,
                // i.e. "assume busy until the child's first report
                // re-synchronises us" (phase shifts only ever delay, so
                // an early expectation is always safe).
                let conservative = q.round_at(now).map(|k| q.round_start(k)).unwrap_or(q.phase);
                for &c in kids_now {
                    let is_new = old_kids.map(|old| !old.contains(&c)).unwrap_or(true);
                    if is_new {
                        self.ss.update_next_receive(q.id, c, conservative);
                    }
                }
            }
        }
    }

    fn sleep_decision(
        &mut self,
        _trigger: SleepTrigger,
        view: &NodeView,
        out: &mut Vec<PolicyAction<P>>,
    ) {
        // ESSAT re-evaluates checkState at every quiesce point and
        // every boundary alike.
        if !view.may_sleep || view.dead || !view.radio_active || !view.mac_quiescent {
            return;
        }
        match self.ss.decide(view.now) {
            SleepDecision::Sleep { start_wake_at, .. } => {
                if start_wake_at <= view.now + view.turn_off {
                    return; // no room to complete the off transition
                }
                out.push(PolicyAction::Sleep {
                    wake_at: Some(start_wake_at),
                });
            }
            SleepDecision::Unconstrained => {
                // No queries routed through this node: sleep until
                // poked.
                out.push(PolicyAction::Sleep { wake_at: None });
            }
            SleepDecision::Busy | SleepDecision::StayAwake { .. } => {}
        }
    }

    fn earliest_commitment(&self) -> Option<SimTime> {
        self.ss.earliest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nts::Nts;
    use crate::sts::Sts;
    use essat_query::aggregate::AggregateOp;
    use essat_query::model::QueryId;

    fn query(period_ms: u64, phase_ms: u64) -> Query {
        Query::periodic(
            QueryId::new(0),
            SimDuration::from_millis(period_ms),
            SimTime::from_millis(phase_ms),
            AggregateOp::Avg,
        )
    }

    fn nts_policy() -> EssatPolicy {
        EssatPolicy::new(
            "NTS-SS",
            Box::new(Nts::new()),
            SimDuration::from_micros(2_500),
            SimDuration::from_micros(1_250),
        )
    }

    fn awake_view(now: SimTime) -> NodeView {
        NodeView {
            now,
            dead: false,
            radio_active: true,
            mac_quiescent: true,
            mac_can_suspend: true,
            may_sleep: true,
            turn_off: SimDuration::from_micros(1_250),
        }
    }

    fn decide(p: &mut EssatPolicy, view: &NodeView) -> Vec<PolicyAction<()>> {
        let mut out = Vec::new();
        p.sleep_decision(SleepTrigger::Quiesce, view, &mut out);
        out
    }

    #[test]
    fn unregistered_node_sleeps_unconstrained() {
        let mut p = nts_policy();
        let acts = decide(&mut p, &awake_view(SimTime::from_millis(5)));
        assert!(
            matches!(acts[..], [PolicyAction::Sleep { wake_at: None }]),
            "{acts:?}"
        );
    }

    #[test]
    fn safe_sleep_rule_wakes_turn_on_early() {
        // Leaf source, NTS: s(k) = φ + kP, so after registration the
        // node expects to send at the phase. Sleeping must start the
        // wake-up exactly t_OFF→ON before that expectation.
        let mut p = nts_policy();
        let q = query(1_000, 100);
        PowerPolicy::<()>::on_register(&mut p, &q, &TreeInfo::leaf(3), false);
        let acts = decide(&mut p, &awake_view(SimTime::from_millis(5)));
        let expected_wake = SimTime::from_millis(100) - SimDuration::from_micros(1_250);
        match acts[..] {
            [PolicyAction::Sleep {
                wake_at: Some(at), ..
            }] => assert_eq!(at, expected_wake),
            ref other => panic!("expected a scheduled sleep, got {other:?}"),
        }
    }

    #[test]
    fn no_sleep_when_gap_below_break_even() {
        // 1 ms before the send expectation the free interval is under
        // t_BE = 2.5 ms: Safe Sleep's no-energy-penalty rule keeps the
        // radio on.
        let mut p = nts_policy();
        let q = query(1_000, 100);
        PowerPolicy::<()>::on_register(&mut p, &q, &TreeInfo::leaf(3), false);
        let acts = decide(&mut p, &awake_view(SimTime::from_millis(99)));
        assert!(acts.is_empty(), "{acts:?}");
    }

    #[test]
    fn busy_while_expectation_overdue() {
        let mut p = nts_policy();
        let q = query(1_000, 100);
        PowerPolicy::<()>::on_register(&mut p, &q, &TreeInfo::leaf(3), false);
        let acts = decide(&mut p, &awake_view(SimTime::from_millis(100)));
        assert!(acts.is_empty(), "overdue expectation means busy");
    }

    #[test]
    fn guards_suppress_sleep() {
        let mut p = nts_policy();
        let now = SimTime::from_millis(5);
        for view in [
            NodeView {
                mac_quiescent: false,
                ..awake_view(now)
            },
            NodeView {
                radio_active: false,
                ..awake_view(now)
            },
            NodeView {
                dead: true,
                ..awake_view(now)
            },
            NodeView {
                may_sleep: false,
                ..awake_view(now)
            },
        ] {
            assert!(decide(&mut p, &view).is_empty(), "{view:?}");
        }
    }

    #[test]
    fn send_completion_advances_expectation() {
        let mut p = nts_policy();
        let q = query(1_000, 100);
        let leaf = TreeInfo::leaf(3);
        PowerPolicy::<()>::on_register(&mut p, &q, &leaf, false);
        PowerPolicy::<()>::on_report_sent(&mut p, &q, 0, SimTime::from_millis(101), &leaf);
        // The next commitment is round 1's send at φ + P.
        assert_eq!(
            PowerPolicy::<()>::earliest_commitment(&p),
            Some(SimTime::from_millis(1_100))
        );
    }

    #[test]
    fn skipped_round_advances_past_quiet_phase() {
        let mut p = nts_policy();
        let q = query(1_000, 100);
        let leaf = TreeInfo::leaf(3);
        PowerPolicy::<()>::on_register(&mut p, &q, &leaf, false);
        PowerPolicy::<()>::on_round_skipped(&mut p, &q, 0, &[], false, &leaf);
        assert_eq!(
            PowerPolicy::<()>::earliest_commitment(&p),
            Some(SimTime::from_millis(1_100)),
            "send expectation must move past the skipped round"
        );
    }

    #[test]
    fn forget_query_releases_all_commitments() {
        let mut p = nts_policy();
        let q = query(1_000, 100);
        PowerPolicy::<()>::on_register(&mut p, &q, &TreeInfo::leaf(3), false);
        PowerPolicy::<()>::forget_query(&mut p, q.id);
        assert_eq!(PowerPolicy::<()>::earliest_commitment(&p), None);
        let acts = decide(&mut p, &awake_view(SimTime::from_millis(5)));
        assert!(matches!(acts[..], [PolicyAction::Sleep { wake_at: None }]));
    }

    #[test]
    fn sts_policy_registers_child_expectations() {
        let mut p = EssatPolicy::new(
            "STS-SS",
            Box::new(Sts::new()),
            SimDuration::from_micros(2_500),
            SimDuration::from_micros(1_250),
        );
        let q = query(1_000, 0);
        let children = [(NodeId::new(4), 0)];
        let info = TreeInfo {
            own_rank: 1,
            max_rank: 3,
            own_level: 2,
            max_level: 3,
            children: &children,
        };
        PowerPolicy::<()>::on_register(&mut p, &q, &info, false);
        // Both a send and a receive expectation exist.
        assert!(p.safe_sleep().expectation_count() >= 2);
        // Removing the child drops its receive expectation.
        PowerPolicy::<()>::on_child_removed(&mut p, &q, NodeId::new(4));
        assert_eq!(p.safe_sleep().expectation_count(), 1);
    }

    #[test]
    fn dts_policy_phase_shifts_and_piggybacks_when_late() {
        let mut p = EssatPolicy::new(
            "DTS-SS",
            Box::new(crate::dts::Dts::new()),
            SimDuration::from_micros(2_500),
            SimDuration::from_micros(1_250),
        );
        let q = query(1_000, 100);
        let leaf = TreeInfo::leaf(3);
        PowerPolicy::<()>::on_register(&mut p, &q, &leaf, false);
        assert!(
            PowerPolicy::<()>::wants_phase_resync(&p),
            "DTS resynchronises through phase updates"
        );
        // Round 0 ready *after* its expected send s(0) = 100 ms: DTS
        // phase-shifts — send immediately and advertise the new phase
        // s(1) = ready + P so the parent can re-arm.
        let ready = SimTime::from_millis(140);
        let rel = PowerPolicy::<()>::plan_release(&mut p, &q, 0, ready, &leaf);
        assert_eq!(rel.send_at, ready);
        assert_eq!(rel.piggyback, Some(ready + SimDuration::from_millis(1_000)));
        // An on-time round buffers to the (shifted) schedule with no
        // piggyback.
        let rel1 = PowerPolicy::<()>::plan_release(&mut p, &q, 1, SimTime::from_millis(900), &leaf);
        assert_eq!(rel1.send_at, SimTime::from_millis(1_140));
        assert_eq!(rel1.piggyback, None);
    }

    #[test]
    fn root_never_expects_to_send() {
        let mut p = nts_policy();
        let q = query(1_000, 0);
        let children = [(NodeId::new(2), 0)];
        let info = TreeInfo {
            own_rank: 1,
            max_rank: 1,
            own_level: 0,
            max_level: 1,
            children: &children,
        };
        PowerPolicy::<()>::on_register(&mut p, &q, &info, true);
        // Only the child's receive expectation is tracked.
        assert_eq!(p.safe_sleep().expectation_count(), 1);
    }
}
