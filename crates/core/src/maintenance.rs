//! Protocol maintenance (§4.3): loss detection, phase resynchronisation,
//! and failure detection.
//!
//! * [`LossDetector`] — watches the round numbers (sequence numbers) of
//!   received reports per `(query, child)` and reports gaps. For DTS, a
//!   gap combined with a missing piggyback means the parent's phase may
//!   be stale, triggering a *phase-update request* to the child
//!   ([`ResyncPolicy`]).
//! * [`FailureDetector`] — counts **consecutive** misses. A parent whose
//!   child repeatedly fails to deliver declares the child failed and
//!   drops its expectations; a child that repeatedly fails to transmit
//!   to its parent declares the parent failed and asks the routing layer
//!   for a new one.
//!
//! Both detectors are deliberately simple counters: the paper's protocols
//! are designed so that recovery needs no heavier machinery (NTS needs
//! nothing at all; STS recomputes from ranks; DTS sends one phase
//! update).

use std::collections::BTreeMap;

use essat_net::ids::NodeId;
use essat_query::model::QueryId;

/// What a received report's round number says about prior losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossObservation {
    /// First report ever seen from this child for this query.
    First,
    /// Exactly the next expected round.
    InOrder,
    /// One or more rounds were skipped.
    Gap {
        /// Number of missing rounds.
        missed: u64,
    },
    /// Round at or before the last seen one (duplicate or reordering);
    /// ignore.
    Stale,
}

/// Sequence-number-based loss detection per `(query, child)`.
#[derive(Debug, Clone, Default)]
pub struct LossDetector {
    last_round: BTreeMap<(QueryId, NodeId), u64>,
}

impl LossDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the arrival of `child`'s round-`k` report and classifies
    /// it.
    pub fn observe(&mut self, q: QueryId, child: NodeId, k: u64) -> LossObservation {
        match self.last_round.get(&(q, child)).copied() {
            None => {
                self.last_round.insert((q, child), k);
                if k == 0 {
                    LossObservation::First
                } else {
                    // Never heard from this child, and its first report
                    // is already past round 0 — everything before was
                    // lost (or we just joined).
                    LossObservation::First
                }
            }
            Some(last) if k == last + 1 => {
                self.last_round.insert((q, child), k);
                LossObservation::InOrder
            }
            Some(last) if k > last + 1 => {
                self.last_round.insert((q, child), k);
                LossObservation::Gap {
                    missed: k - last - 1,
                }
            }
            Some(_) => LossObservation::Stale,
        }
    }

    /// Forgets a child (failed or re-parented away).
    pub fn remove_child(&mut self, child: NodeId) {
        self.last_round.retain(|&(_, c), _| c != child);
    }

    /// Forgets a query.
    pub fn remove_query(&mut self, q: QueryId) {
        self.last_round.retain(|&(qq, _), _| qq != q);
    }
}

/// Decides when a gap warrants an explicit phase-update request (§4.3,
/// DTS only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncPolicy {
    /// Whether the active shaper resynchronises via phase updates (DTS).
    pub shaper_uses_phases: bool,
}

impl ResyncPolicy {
    /// True if the parent should request a phase update from the child:
    /// the shaper depends on phases, reports were lost, and the report
    /// that finally arrived did **not** carry a fresh phase.
    ///
    /// ("If the data report received after the transient packet drop(s)
    /// contains a phase update, this phase is used as the new phase …
    /// Otherwise, the receiver requests a phase update from the sender.")
    pub fn should_request_phase(self, obs: LossObservation, had_piggyback: bool) -> bool {
        self.shaper_uses_phases && matches!(obs, LossObservation::Gap { .. }) && !had_piggyback
    }
}

/// Counts consecutive misses to declare peers failed.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    threshold: u32,
    misses: BTreeMap<NodeId, u32>,
}

impl FailureDetector {
    /// Creates a detector that declares a peer failed after `threshold`
    /// consecutive misses.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be at least 1");
        FailureDetector {
            threshold,
            misses: BTreeMap::new(),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Records a miss (timeout or transmission failure) for `peer`.
    /// Returns `true` when the peer crosses the failure threshold with
    /// this miss (exactly once; further misses keep returning `true`
    /// until [`FailureDetector::heard_from`] resets the count).
    pub fn miss(&mut self, peer: NodeId) -> bool {
        let m = self.misses.entry(peer).or_insert(0);
        *m += 1;
        *m >= self.threshold
    }

    /// Records successful communication with `peer`, resetting its
    /// counter.
    pub fn heard_from(&mut self, peer: NodeId) {
        self.misses.remove(&peer);
    }

    /// Current consecutive-miss count for `peer`.
    pub fn miss_count(&self, peer: NodeId) -> u32 {
        self.misses.get(&peer).copied().unwrap_or(0)
    }

    /// Forgets a peer entirely.
    pub fn remove(&mut self, peer: NodeId) {
        self.misses.remove(&peer);
    }
}

impl Default for FailureDetector {
    /// Three consecutive misses — a common WSN heuristic balancing
    /// false positives against detection delay.
    fn default() -> Self {
        FailureDetector::new(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QueryId {
        QueryId::new(i)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn in_order_stream() {
        let mut d = LossDetector::new();
        assert_eq!(d.observe(q(0), n(1), 0), LossObservation::First);
        assert_eq!(d.observe(q(0), n(1), 1), LossObservation::InOrder);
        assert_eq!(d.observe(q(0), n(1), 2), LossObservation::InOrder);
    }

    #[test]
    fn gaps_counted_exactly() {
        let mut d = LossDetector::new();
        d.observe(q(0), n(1), 0);
        assert_eq!(d.observe(q(0), n(1), 3), LossObservation::Gap { missed: 2 });
        assert_eq!(d.observe(q(0), n(1), 4), LossObservation::InOrder);
    }

    #[test]
    fn stale_and_duplicate_reports() {
        let mut d = LossDetector::new();
        d.observe(q(0), n(1), 5);
        assert_eq!(d.observe(q(0), n(1), 5), LossObservation::Stale);
        assert_eq!(d.observe(q(0), n(1), 2), LossObservation::Stale);
        // Stale does not disturb the sequence.
        assert_eq!(d.observe(q(0), n(1), 6), LossObservation::InOrder);
    }

    #[test]
    fn streams_are_independent() {
        let mut d = LossDetector::new();
        d.observe(q(0), n(1), 0);
        d.observe(q(1), n(1), 7);
        d.observe(q(0), n(2), 3);
        assert_eq!(d.observe(q(0), n(1), 1), LossObservation::InOrder);
        assert_eq!(d.observe(q(1), n(1), 8), LossObservation::InOrder);
        assert_eq!(d.observe(q(0), n(2), 4), LossObservation::InOrder);
    }

    #[test]
    fn removal_resets_sequences() {
        let mut d = LossDetector::new();
        d.observe(q(0), n(1), 9);
        d.remove_child(n(1));
        assert_eq!(d.observe(q(0), n(1), 0), LossObservation::First);
        d.observe(q(1), n(2), 3);
        d.remove_query(q(1));
        assert_eq!(d.observe(q(1), n(2), 0), LossObservation::First);
    }

    #[test]
    fn resync_policy_matrix() {
        let dts = ResyncPolicy {
            shaper_uses_phases: true,
        };
        let nts = ResyncPolicy {
            shaper_uses_phases: false,
        };
        let gap = LossObservation::Gap { missed: 1 };
        assert!(dts.should_request_phase(gap, false), "gap w/o phase -> ask");
        assert!(
            !dts.should_request_phase(gap, true),
            "piggybacked phase already resyncs"
        );
        assert!(!dts.should_request_phase(LossObservation::InOrder, false));
        assert!(!nts.should_request_phase(gap, false), "NTS never asks");
    }

    #[test]
    fn failure_detector_threshold() {
        let mut f = FailureDetector::new(3);
        assert!(!f.miss(n(1)));
        assert!(!f.miss(n(1)));
        assert!(f.miss(n(1)), "third consecutive miss crosses threshold");
        assert_eq!(f.miss_count(n(1)), 3);
    }

    #[test]
    fn success_resets_counter() {
        let mut f = FailureDetector::new(2);
        f.miss(n(1));
        f.heard_from(n(1));
        assert!(!f.miss(n(1)), "counter was reset");
        assert_eq!(f.miss_count(n(1)), 1);
    }

    #[test]
    fn peers_tracked_independently() {
        let mut f = FailureDetector::default();
        for _ in 0..2 {
            f.miss(n(1));
        }
        assert_eq!(f.miss_count(n(2)), 0);
        assert!(!f.miss(n(2)));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_rejected() {
        let _ = FailureDetector::new(0);
    }
}
