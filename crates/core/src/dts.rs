//! DTS — Dynamic Traffic Shaper (§4.2.3).
//!
//! DTS self-tunes where STS must be configured: expected send and
//! reception times adapt to the multi-hop delays actually observed,
//! following the Release-Guard idea (Sun \[10\]) adapted to aggregation
//! trees and sleeping nodes.
//!
//! The protocol, per query:
//!
//! * `s(0) = r(0) = φ` — the first round is greedy, like NTS.
//! * If round `k`'s report is **ready by `s(k)`**, it is buffered and
//!   sent at `s(k)`; the next send time is `s(k+1) = s(k) + P`, and the
//!   parent advances `r(k+1) = r(k) + P` **with no packet exchange**.
//! * If the report is **late** (`ready t > s(k)`), it is sent
//!   immediately — a **phase shift** — and `s(k+1) = t + P` is
//!   piggybacked on the data packet so the parent can re-arm.
//!
//! Phase shifts only ever *delay* schedules, which is what makes loss
//! recovery safe: a parent that missed a phase update wakes early (a
//! transient energy cost, §4.3) but never too late, and an explicit
//! phase-update request ([`Dts::on_phase_update_request`]) forces the
//! next report to carry the current phase.
//!
//! After a couple of rounds the phases settle at the observed multi-hop
//! offset, so nodes wake *just in time* — the paper measures the
//! piggyback overhead at under one bit per data report.

use std::collections::BTreeMap;

use essat_net::ids::NodeId;
use essat_query::model::{Query, QueryId};
use essat_sim::time::{SimDuration, SimTime};

use crate::shaper::{Expectations, Release, ShaperKind, TrafficShaper, TreeInfo};

/// Configuration for [`Dts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtsConfig {
    /// The §4.3 timeout margin `t_TO`: round `k` times out at
    /// `max_c r(k, c) + t_TO`.
    pub timeout_margin: SimDuration,
}

impl Default for DtsConfig {
    fn default() -> Self {
        DtsConfig {
            // Must cover a one-hop collection under contention: sources
            // share the round boundary `φ + k·P`, so a parent's children
            // (and its neighbours' children) all contend at once and the
            // slowest report can take tens of milliseconds. A margin that
            // is too tight seals rounds partially *and* lets the parent
            // fall asleep before late reports arrive, which the sender
            // then misreads as a parent failure.
            timeout_margin: SimDuration::from_millis(50),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SendSched {
    /// The round `s_next` refers to.
    round: u64,
    /// Expected send time of that round's report.
    s_next: SimTime,
    /// Force a phase update on the next data report (resync request or
    /// parent change).
    force_piggyback: bool,
}

#[derive(Debug, Clone, Copy)]
struct RecvSched {
    /// The round `r_next` refers to.
    round: u64,
    /// Expected reception time of that round's report.
    r_next: SimTime,
}

/// The DTS shaper.
#[derive(Debug, Clone, Default)]
pub struct Dts {
    config: DtsConfig,
    sends: BTreeMap<QueryId, SendSched>,
    recvs: BTreeMap<(QueryId, NodeId), RecvSched>,
    /// Phase updates piggybacked so far (for the paper's overhead
    /// accounting).
    piggybacks_sent: u64,
    /// Data reports released (denominator of the overhead metric).
    reports_sent: u64,
}

impl Dts {
    /// Creates a DTS shaper with the default configuration.
    pub fn new() -> Self {
        Dts::with_config(DtsConfig::default())
    }

    /// Creates a DTS shaper with an explicit configuration.
    pub fn with_config(config: DtsConfig) -> Self {
        Dts {
            config,
            sends: BTreeMap::new(),
            recvs: BTreeMap::new(),
            piggybacks_sent: 0,
            reports_sent: 0,
        }
    }

    /// Phase updates piggybacked on data reports so far.
    pub fn piggybacks_sent(&self) -> u64 {
        self.piggybacks_sent
    }

    /// Data reports released so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// The expected reception time of round `k` from `child`, projecting
    /// forward by whole periods if the stored schedule lags behind.
    fn projected_recv(&self, q: &Query, child: NodeId, k: u64) -> Option<SimTime> {
        let st = self.recvs.get(&(q.id, child))?;
        if st.round > k {
            None // already received
        } else {
            Some(st.r_next + q.period * (k - st.round))
        }
    }
}

impl TrafficShaper for Dts {
    fn kind(&self) -> ShaperKind {
        ShaperKind::Dts
    }

    fn register(&mut self, q: &Query, tree: &TreeInfo<'_>, is_root: bool) -> Expectations {
        self.sends.insert(
            q.id,
            SendSched {
                round: 0,
                s_next: q.phase,
                force_piggyback: false,
            },
        );
        for &(c, _) in tree.children {
            self.recvs.insert(
                (q.id, c),
                RecvSched {
                    round: 0,
                    r_next: q.phase,
                },
            );
        }
        Expectations {
            snext: (!is_root).then_some(q.phase),
            rnext: tree.children.iter().map(|&(c, _)| (c, q.phase)).collect(),
        }
    }

    fn deregister(&mut self, q: &Query) {
        self.sends.remove(&q.id);
        self.recvs.retain(|&(qq, _), _| qq != q.id);
    }

    fn release(&mut self, q: &Query, k: u64, ready_at: SimTime, _tree: &TreeInfo<'_>) -> Release {
        let st = self.sends.entry(q.id).or_insert(SendSched {
            round: k,
            s_next: q.phase + q.period * k,
            force_piggyback: false,
        });
        // Project forward if rounds were skipped while suspended.
        if st.round < k {
            st.s_next += q.period * (k - st.round);
            st.round = k;
        }
        if st.round > k {
            // A round re-released after churn recovery (the node died
            // between releasing and sending, then a straggler child
            // report reopened the round): the schedule already advanced
            // past it, so send immediately without regressing it.
            self.reports_sent += 1;
            return Release {
                send_at: ready_at,
                piggyback: None,
            };
        }
        self.reports_sent += 1;
        if ready_at <= st.s_next {
            // On time: buffered until s(k); schedules advance silently.
            let send_at = st.s_next;
            st.s_next = send_at + q.period;
            st.round = k + 1;
            let piggyback = if st.force_piggyback {
                st.force_piggyback = false;
                self.piggybacks_sent += 1;
                Some(st.s_next)
            } else {
                None
            };
            Release { send_at, piggyback }
        } else {
            // Late: phase shift — send now, advertise the new phase.
            let send_at = ready_at;
            st.s_next = send_at + q.period;
            st.round = k + 1;
            st.force_piggyback = false;
            self.piggybacks_sent += 1;
            Release {
                send_at,
                piggyback: Some(st.s_next),
            }
        }
    }

    fn after_send(&mut self, q: &Query, k: u64, _now: SimTime, _tree: &TreeInfo<'_>) -> SimTime {
        let st = self
            .sends
            .get(&q.id)
            .expect("after_send for unregistered query");
        debug_assert!(st.round > k, "release must precede after_send");
        st.s_next
    }

    fn round_skipped(&mut self, q: &Query, k: u64, _tree: &TreeInfo<'_>) -> SimTime {
        let st = self.sends.entry(q.id).or_insert(SendSched {
            round: k,
            s_next: q.phase + q.period * k,
            force_piggyback: false,
        });
        // Quiet rounds advance the phase-shifted schedule silently,
        // exactly like an on-time buffered report would.
        if st.round <= k {
            st.s_next += q.period * (k + 1 - st.round);
            st.round = k + 1;
        }
        st.s_next
    }

    fn after_receive(
        &mut self,
        q: &Query,
        child: NodeId,
        k: u64,
        _now: SimTime,
        piggyback: Option<SimTime>,
        _tree: &TreeInfo<'_>,
    ) -> SimTime {
        let st = self.recvs.entry((q.id, child)).or_insert(RecvSched {
            round: k,
            r_next: q.phase + q.period * k,
        });
        if st.round > k + 1 {
            // Stale duplicate of an old round: keep the newer schedule.
            return st.r_next;
        }
        let new_r = match piggyback {
            // The child advertised s(k+1) explicitly.
            Some(p) => p,
            // No phase shift: r(k+1) = r(k) + P, projected over any
            // skipped rounds.
            None => st.r_next + q.period * (k + 1 - st.round),
        };
        st.round = k + 1;
        st.r_next = new_r;
        new_r
    }

    fn collection_deadline(&self, q: &Query, k: u64, _tree: &TreeInfo<'_>) -> SimTime {
        // max_c r(k, c) + t_TO over children still owing round k.
        let latest = self
            .recvs
            .keys()
            .filter(|&&(qq, _)| qq == q.id)
            .filter_map(|&(_, c)| self.projected_recv(q, c, k))
            .max();
        latest.unwrap_or_else(|| q.round_start(k)) + self.config.timeout_margin
    }

    fn child_timed_out(
        &mut self,
        q: &Query,
        child: NodeId,
        k: u64,
        _tree: &TreeInfo<'_>,
    ) -> SimTime {
        let st = self.recvs.entry((q.id, child)).or_insert(RecvSched {
            round: k,
            r_next: q.phase + q.period * k,
        });
        // Phase shifts only delay, so "+ P per missed round" is a safe
        // lower bound; the next received report (or a requested phase
        // update) re-synchronises exactly.
        if st.round <= k {
            st.r_next += q.period * (k + 1 - st.round);
            st.round = k + 1;
        }
        st.r_next
    }

    fn on_topology_change(
        &mut self,
        q: &Query,
        tree: &TreeInfo<'_>,
        _is_root: bool,
        now: SimTime,
    ) -> Option<Expectations> {
        // §4.3: no recomputation — the next data report to the new parent
        // simply carries a phase update. New children start from the next
        // round boundary as a conservative lower bound (phase shifts only
        // delay schedules, so this can only make the node wake early).
        if let Some(st) = self.sends.get_mut(&q.id) {
            st.force_piggyback = true;
        }
        let next_round = q.round_at(now).map(|k| k + 1).unwrap_or(0);
        for &(c, _) in tree.children {
            self.recvs.entry((q.id, c)).or_insert(RecvSched {
                round: next_round,
                r_next: q.round_start(next_round),
            });
        }
        None
    }

    fn on_phase_update_request(&mut self, q: &Query) {
        if let Some(st) = self.sends.get_mut(&q.id) {
            st.force_piggyback = true;
        }
    }

    fn remove_child(&mut self, q: &Query, child: NodeId) {
        self.recvs.remove(&(q.id, child));
    }

    fn wants_phase_resync(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essat_query::aggregate::AggregateOp;

    fn q() -> Query {
        Query::periodic(
            QueryId::new(0),
            SimDuration::from_millis(200),
            SimTime::from_secs(1),
            AggregateOp::Sum,
        )
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn leaf_tree() -> TreeInfo<'static> {
        TreeInfo::leaf(4)
    }

    #[test]
    fn initial_schedule_is_phase() {
        let mut dts = Dts::new();
        let children = [(n(1), 0)];
        let tree = TreeInfo {
            own_rank: 1,
            max_rank: 4,
            own_level: 3,
            max_level: 4,
            children: &children,
        };
        let e = dts.register(&q(), &tree, false);
        assert_eq!(e.snext, Some(ms(1000)));
        assert_eq!(e.rnext, vec![(n(1), ms(1000))]);
    }

    #[test]
    fn on_time_report_buffers_and_advances_silently() {
        let mut dts = Dts::new();
        dts.register(&q(), &leaf_tree(), false);
        // Ready before s(0)=φ.
        let r = dts.release(&q(), 0, ms(990), &leaf_tree());
        assert_eq!(r.send_at, ms(1000), "buffered until s(0)");
        assert_eq!(r.piggyback, None, "no phase shift, no overhead");
        assert_eq!(dts.after_send(&q(), 0, ms(1001), &leaf_tree()), ms(1200));
    }

    #[test]
    fn late_report_phase_shifts_and_piggybacks() {
        let mut dts = Dts::new();
        dts.register(&q(), &leaf_tree(), false);
        // Round 0 late by 30 ms.
        let r = dts.release(&q(), 0, ms(1030), &leaf_tree());
        assert_eq!(r.send_at, ms(1030), "late reports go immediately");
        assert_eq!(r.piggyback, Some(ms(1230)), "s(1) = t + P advertised");
        assert_eq!(dts.after_send(&q(), 0, ms(1031), &leaf_tree()), ms(1230));
        // Round 1 ready on the shifted schedule: no new piggyback.
        let r2 = dts.release(&q(), 1, ms(1210), &leaf_tree());
        assert_eq!(r2.send_at, ms(1230));
        assert_eq!(r2.piggyback, None);
        assert_eq!(dts.piggybacks_sent(), 1);
        assert_eq!(dts.reports_sent(), 2);
    }

    #[test]
    fn parent_tracks_child_phase() {
        let mut dts = Dts::new();
        let children = [(n(1), 0)];
        let tree = TreeInfo {
            own_rank: 1,
            max_rank: 4,
            own_level: 3,
            max_level: 4,
            children: &children,
        };
        dts.register(&q(), &tree, false);
        // Child's round-0 report arrives without piggyback: r(1)=r(0)+P.
        let r1 = dts.after_receive(&q(), n(1), 0, ms(1005), None, &tree);
        assert_eq!(r1, ms(1200));
        // Round 1 arrives WITH a phase update (child shifted to 1.26 s).
        let r2 = dts.after_receive(&q(), n(1), 1, ms(1260), Some(ms(1460)), &tree);
        assert_eq!(r2, ms(1460));
        // Round 2 without piggyback: advance from the shifted phase.
        let r3 = dts.after_receive(&q(), n(1), 2, ms(1462), None, &tree);
        assert_eq!(r3, ms(1660));
    }

    #[test]
    fn skipped_rounds_project_forward() {
        let mut dts = Dts::new();
        let children = [(n(1), 0)];
        let tree = TreeInfo {
            own_rank: 1,
            max_rank: 4,
            own_level: 3,
            max_level: 4,
            children: &children,
        };
        dts.register(&q(), &tree, false);
        // Rounds 0 and 1 lost; round 2 arrives without piggyback.
        let r = dts.after_receive(&q(), n(1), 2, ms(1410), None, &tree);
        // r(3) = φ + 3P.
        assert_eq!(r, ms(1600));
    }

    #[test]
    fn child_timeout_advances_conservatively() {
        let mut dts = Dts::new();
        let children = [(n(1), 0)];
        let tree = TreeInfo {
            own_rank: 1,
            max_rank: 4,
            own_level: 3,
            max_level: 4,
            children: &children,
        };
        dts.register(&q(), &tree, false);
        let r = dts.child_timed_out(&q(), n(1), 0, &tree);
        assert_eq!(r, ms(1200), "round 1 expected a period later");
        // A later real report with piggyback resynchronises exactly.
        let r2 = dts.after_receive(&q(), n(1), 1, ms(1290), Some(ms(1490)), &tree);
        assert_eq!(r2, ms(1490));
    }

    #[test]
    fn collection_deadline_uses_latest_pending_child() {
        let mut dts = Dts::with_config(DtsConfig {
            timeout_margin: SimDuration::from_millis(5),
        });
        let children = [(n(1), 0), (n(2), 0)];
        let tree = TreeInfo {
            own_rank: 1,
            max_rank: 4,
            own_level: 3,
            max_level: 4,
            children: &children,
        };
        dts.register(&q(), &tree, false);
        // Child 2 phase-shifted its round-0 report to 1.04 s.
        dts.recvs.get_mut(&(q().id, n(2))).unwrap().r_next = ms(1040);
        assert_eq!(dts.collection_deadline(&q(), 0, &tree), ms(1045));
        // Once child 2's round 0 arrived, only child 1 pends for round 0.
        dts.after_receive(&q(), n(2), 0, ms(1041), None, &tree);
        assert_eq!(dts.collection_deadline(&q(), 0, &tree), ms(1005));
    }

    #[test]
    fn leaf_deadline_falls_back_to_round_start() {
        let dts = Dts::new();
        assert_eq!(
            dts.collection_deadline(&q(), 3, &leaf_tree()),
            q().round_start(3) + DtsConfig::default().timeout_margin
        );
    }

    #[test]
    fn phase_update_request_forces_piggyback() {
        let mut dts = Dts::new();
        dts.register(&q(), &leaf_tree(), false);
        dts.on_phase_update_request(&q());
        // On-time release would normally stay silent; the request forces
        // the phase into the packet.
        let r = dts.release(&q(), 0, ms(990), &leaf_tree());
        assert_eq!(r.send_at, ms(1000));
        assert_eq!(r.piggyback, Some(ms(1200)));
        // One-shot.
        let r2 = dts.release(&q(), 1, ms(1190), &leaf_tree());
        assert_eq!(r2.piggyback, None);
    }

    #[test]
    fn topology_change_marks_piggyback_not_recompute() {
        let mut dts = Dts::new();
        dts.register(&q(), &leaf_tree(), false);
        let out = dts.on_topology_change(&q(), &leaf_tree(), false, ms(0));
        assert!(out.is_none(), "DTS needs no recomputation");
        let r = dts.release(&q(), 0, ms(990), &leaf_tree());
        assert!(
            r.piggyback.is_some(),
            "first report to new parent carries phase"
        );
        assert!(dts.wants_phase_resync());
    }

    #[test]
    fn phases_monotonically_nondecreasing() {
        let mut dts = Dts::new();
        dts.register(&q(), &leaf_tree(), false);
        let mut last_send = SimTime::ZERO;
        let mut ready = ms(995);
        for k in 0..50 {
            let r = dts.release(&q(), k, ready, &leaf_tree());
            assert!(r.send_at >= last_send, "send times never regress");
            let gap = r.send_at - last_send;
            if k > 0 {
                assert!(
                    gap >= SimDuration::from_millis(200),
                    "consecutive sends at least a period apart (round {k})"
                );
            }
            last_send = r.send_at;
            // Jittered readiness, occasionally very late.
            let jitter = if k % 7 == 3 { 260 } else { 190 };
            ready = r.send_at + SimDuration::from_millis(jitter);
        }
    }

    #[test]
    fn skipped_rounds_advance_send_schedule_silently() {
        let mut dts = Dts::new();
        dts.register(&q(), &leaf_tree(), false);
        // Rounds 0 and 1 silenced by a traffic phase.
        assert_eq!(dts.round_skipped(&q(), 0, &leaf_tree()), ms(1200));
        assert_eq!(dts.round_skipped(&q(), 1, &leaf_tree()), ms(1400));
        // Round 2 runs on time on the unshifted schedule.
        let r = dts.release(&q(), 2, ms(1395), &leaf_tree());
        assert_eq!(r.send_at, ms(1400));
        assert_eq!(r.piggyback, None, "no phase shift across the gap");
    }

    #[test]
    fn re_released_round_sends_immediately_without_regressing() {
        let mut dts = Dts::new();
        dts.register(&q(), &leaf_tree(), false);
        let first = dts.release(&q(), 0, ms(990), &leaf_tree());
        assert_eq!(first.send_at, ms(1000));
        // Churn recovery re-opens round 0; the settled schedule stays.
        let again = dts.release(&q(), 0, ms(1050), &leaf_tree());
        assert_eq!(again.send_at, ms(1050));
        assert_eq!(again.piggyback, None);
        assert_eq!(dts.after_send(&q(), 0, ms(1051), &leaf_tree()), ms(1200));
    }

    #[test]
    fn overhead_counters() {
        let mut dts = Dts::new();
        dts.register(&q(), &leaf_tree(), false);
        let mut t = ms(995);
        for k in 0..10 {
            let r = dts.release(&q(), k, t, &leaf_tree());
            t = r.send_at + SimDuration::from_millis(190);
        }
        // Only the steady drip of on-time rounds: at most the initial
        // shift produces updates.
        assert!(dts.piggybacks_sent() <= 2);
        assert_eq!(dts.reports_sent(), 10);
    }
}
