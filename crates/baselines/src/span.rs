//! SPAN — backbone-based power management (Chen, Jamieson, Balakrishnan
//! & Morris \[3\]).
//!
//! SPAN keeps a connected *backbone* of coordinator nodes always on to
//! route traffic while other nodes sleep. Two variants are provided:
//!
//! * [`SpanBackbone::from_tree`] — the configuration the paper actually
//!   evaluates: "the routing trees are modified such that all leaf nodes
//!   are sleeping nodes while non-leaf nodes are active nodes selected by
//!   SPAN", with the leaves running NTS-SS instead of PSM.
//! * [`SpanElection`] — a full implementation of SPAN's distributed
//!   coordinator-election rule, for the ablation benches: a node
//!   volunteers as coordinator if two of its neighbours cannot reach
//!   each other directly or via one or two coordinators; redundant
//!   coordinators later withdraw. We compute the fixed point offline
//!   with a seeded random ordering standing in for SPAN's randomised
//!   announcement backoff.
//!
//! The invariant in both variants — verified by `check_invariants` — is
//! that coordinators form a dominating set that keeps the relevant nodes
//! connected.

use essat_net::ids::NodeId;
use essat_net::topology::Topology;
use essat_query::tree::RoutingTree;
use essat_sim::rng::SimRng;

/// A coordinator assignment over the nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanBackbone {
    coordinator: Vec<bool>,
}

impl SpanBackbone {
    /// The paper's evaluation variant: every non-leaf tree member is a
    /// coordinator (always on); leaves sleep under NTS-SS.
    pub fn from_tree(tree: &RoutingTree, node_count: usize) -> Self {
        let mut coordinator = vec![false; node_count];
        for &m in tree.members() {
            if !tree.is_leaf(m) {
                coordinator[m.index()] = true;
            }
        }
        SpanBackbone { coordinator }
    }

    /// Builds a backbone from an explicit coordinator set.
    pub fn from_set(coordinators: &[NodeId], node_count: usize) -> Self {
        let mut coordinator = vec![false; node_count];
        for &c in coordinators {
            coordinator[c.index()] = true;
        }
        SpanBackbone { coordinator }
    }

    /// True if `node` is a coordinator (always-on backbone member).
    pub fn is_coordinator(&self, node: NodeId) -> bool {
        self.coordinator[node.index()]
    }

    /// All coordinators.
    pub fn coordinators(&self) -> Vec<NodeId> {
        self.coordinator
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| NodeId::new(i as u32))
            .collect()
    }

    /// Number of coordinators.
    pub fn coordinator_count(&self) -> usize {
        self.coordinator.iter().filter(|&&c| c).count()
    }

    /// Verifies the backbone invariants for the members of `tree`:
    /// every member is a coordinator or adjacent to one, and the
    /// coordinators that are members form a connected subgraph (when
    /// there are at least two).
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn check_invariants(&self, topology: &Topology, tree: &RoutingTree) {
        for &m in tree.members() {
            let covered = self.is_coordinator(m)
                || topology
                    .neighbors(m)
                    .iter()
                    .any(|&nb| self.is_coordinator(nb));
            assert!(covered, "{m} has no coordinator in range");
        }
        let member_coords: Vec<NodeId> = tree
            .members()
            .iter()
            .copied()
            .filter(|&m| self.is_coordinator(m))
            .collect();
        if member_coords.len() > 1 {
            let root = member_coords[0];
            assert!(
                topology.is_connected_subset(root, &member_coords),
                "coordinator backbone is disconnected"
            );
        }
    }
}

/// The distributed election rule, computed to a fixed point.
#[derive(Debug, Clone)]
pub struct SpanElection;

impl SpanElection {
    /// Runs the announce/withdraw rules until stable and returns the
    /// resulting backbone. `rng` stands in for SPAN's randomised
    /// announcement delays (it shuffles the evaluation order).
    pub fn elect(topology: &Topology, rng: &mut SimRng) -> SpanBackbone {
        let n = topology.node_count();
        let mut coordinator = vec![false; n];
        let mut order: Vec<NodeId> = topology.nodes().collect();

        // Announce passes: nodes volunteer while coverage gaps exist.
        loop {
            rng.shuffle(&mut order);
            let mut changed = false;
            for &u in &order {
                if !coordinator[u.index()] && Self::has_uncovered_pair(topology, &coordinator, u) {
                    coordinator[u.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Withdraw pass: drop coordinators that are globally redundant.
        // A withdrawal can only affect pair-coverage of nodes whose
        // 2-coordinator witness paths pass through `u`, i.e. nodes within
        // three hops — re-check exactly those.
        let mut withdraw_order: Vec<NodeId> = topology.nodes().collect();
        rng.shuffle(&mut withdraw_order);
        for &u in &withdraw_order {
            if !coordinator[u.index()] {
                continue;
            }
            coordinator[u.index()] = false;
            let broke_coverage = Self::nodes_within_hops(topology, u, 3)
                .into_iter()
                .any(|w| Self::has_uncovered_pair(topology, &coordinator, w))
                || Self::neighbors_disconnected(topology, &coordinator, u);
            if broke_coverage {
                coordinator[u.index()] = true; // still needed
            }
        }

        SpanBackbone { coordinator }
    }

    /// Nodes within `hops` hops of `u`, including `u` itself.
    fn nodes_within_hops(topology: &Topology, u: NodeId, hops: u32) -> Vec<NodeId> {
        let mut dist = vec![u32::MAX; topology.node_count()];
        dist[u.index()] = 0;
        let mut frontier = vec![u];
        let mut out = vec![u];
        for d in 1..=hops {
            let mut next = Vec::new();
            for &x in &frontier {
                for &y in topology.neighbors(x) {
                    if dist[y.index()] == u32::MAX {
                        dist[y.index()] = d;
                        next.push(y);
                        out.push(y);
                    }
                }
            }
            frontier = next;
        }
        out
    }

    /// SPAN's coordinator-eligibility rule: does `u` have two neighbours
    /// that cannot reach each other directly or via one or two
    /// coordinators (excluding `u` itself)?
    fn has_uncovered_pair(topology: &Topology, coordinator: &[bool], u: NodeId) -> bool {
        let nbs = topology.neighbors(u);
        for (i, &a) in nbs.iter().enumerate() {
            for &b in &nbs[i + 1..] {
                if !Self::reachable_within(topology, coordinator, a, b, u) {
                    return true;
                }
            }
        }
        false
    }

    /// Can `a` reach `b` directly, or via one or two coordinator hops,
    /// without using `excluded`?
    fn reachable_within(
        topology: &Topology,
        coordinator: &[bool],
        a: NodeId,
        b: NodeId,
        excluded: NodeId,
    ) -> bool {
        if topology.are_neighbors(a, b) {
            return true;
        }
        // One intermediate coordinator.
        for &m in topology.neighbors(a) {
            if m != excluded && coordinator[m.index()] && topology.are_neighbors(m, b) {
                return true;
            }
        }
        // Two intermediate coordinators.
        for &m1 in topology.neighbors(a) {
            if m1 == excluded || !coordinator[m1.index()] {
                continue;
            }
            for &m2 in topology.neighbors(m1) {
                if m2 != excluded
                    && m2 != a
                    && coordinator[m2.index()]
                    && topology.are_neighbors(m2, b)
                {
                    return true;
                }
            }
        }
        false
    }

    /// Would removing `u` disconnect the coordinator subgraph among its
    /// own coordinator neighbours? (Cheap local check used in the
    /// withdraw pass.)
    fn neighbors_disconnected(topology: &Topology, coordinator: &[bool], u: NodeId) -> bool {
        let coord_nbs: Vec<NodeId> = topology
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&c| coordinator[c.index()])
            .collect();
        if coord_nbs.len() < 2 {
            return false;
        }
        // All pairs of coordinator neighbours must stay mutually
        // reachable via coordinators within two hops.
        for (i, &a) in coord_nbs.iter().enumerate() {
            for &b in &coord_nbs[i + 1..] {
                if !Self::reachable_within(topology, coordinator, a, b, u) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn tree_backbone_is_non_leaves() {
        let topo = Topology::line(4, 10.0, 12.0);
        let tree = RoutingTree::build(&topo, n(0), None);
        let bb = SpanBackbone::from_tree(&tree, topo.node_count());
        assert!(bb.is_coordinator(n(0)));
        assert!(bb.is_coordinator(n(1)));
        assert!(bb.is_coordinator(n(2)));
        assert!(!bb.is_coordinator(n(3)), "leaf sleeps");
        assert_eq!(bb.coordinator_count(), 3);
        bb.check_invariants(&topo, &tree);
    }

    #[test]
    fn from_set_round_trip() {
        let bb = SpanBackbone::from_set(&[n(1), n(3)], 5);
        assert_eq!(bb.coordinators(), vec![n(1), n(3)]);
        assert!(!bb.is_coordinator(n(0)));
    }

    #[test]
    fn election_on_line_picks_interior() {
        let topo = Topology::line(5, 10.0, 12.0);
        let mut rng = SimRng::seed_from_u64(1);
        let bb = SpanElection::elect(&topo, &mut rng);
        // The interior nodes are each the only bridge between their
        // neighbours, so all three must coordinate.
        assert!(bb.is_coordinator(n(1)));
        assert!(bb.is_coordinator(n(2)));
        assert!(bb.is_coordinator(n(3)));
        // Endpoints never need to.
        assert!(!bb.is_coordinator(n(0)));
        assert!(!bb.is_coordinator(n(4)));
    }

    #[test]
    fn election_on_clique_needs_no_coordinators() {
        // Fully connected: every pair of neighbours is directly linked.
        let topo = Topology::grid(2, 2, 5.0, 20.0);
        let mut rng = SimRng::seed_from_u64(2);
        let bb = SpanElection::elect(&topo, &mut rng);
        assert_eq!(bb.coordinator_count(), 0);
    }

    #[test]
    fn election_covers_paper_scale_topology() {
        let mut rng = SimRng::seed_from_u64(77);
        let topo = Topology::random_paper(&mut rng);
        let root = topo.closest_to_center();
        let tree = RoutingTree::build(&topo, root, Some(300.0));
        let mut rng2 = SimRng::seed_from_u64(78);
        let bb = SpanElection::elect(&topo, &mut rng2);
        // Every pair of neighbours of a non-coordinator reaches each
        // other via <= 2 coordinators: spot-check the eligibility rule is
        // satisfied at the fixed point.
        for u in topo.nodes() {
            if !bb.is_coordinator(u) {
                assert!(
                    !SpanElection::has_uncovered_pair(
                        &topo,
                        &(0..topo.node_count())
                            .map(|i| bb.is_coordinator(NodeId::new(i as u32)))
                            .collect::<Vec<_>>(),
                        u
                    ),
                    "{u} still has an uncovered pair"
                );
            }
        }
        // And the backbone credibly dominates the tree members.
        for &m in tree.members() {
            let ok = bb.is_coordinator(m)
                || topo.neighbors(m).iter().any(|&nb| bb.is_coordinator(nb))
                // Isolated-ish members with no neighbours at all cannot
                // be dominated; the paper-scale topology has none.
                || topo.neighbors(m).is_empty();
            assert!(ok, "{m} uncovered by elected backbone");
        }
    }

    #[test]
    fn election_is_deterministic_per_seed() {
        let mut rng_t = SimRng::seed_from_u64(5);
        let topo = Topology::random(
            30,
            essat_net::geometry::Area::new(200.0, 200.0),
            70.0,
            &mut rng_t,
        );
        let a = SpanElection::elect(&topo, &mut SimRng::seed_from_u64(9));
        let b = SpanElection::elect(&topo, &mut SimRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn tree_backbone_smaller_than_everyone() {
        let mut rng = SimRng::seed_from_u64(3);
        let topo = Topology::random_paper(&mut rng);
        let root = topo.closest_to_center();
        let tree = RoutingTree::build(&topo, root, Some(300.0));
        let bb = SpanBackbone::from_tree(&tree, topo.node_count());
        assert!(bb.coordinator_count() < tree.member_count());
        assert!(bb.coordinator_count() > 0);
    }
}
