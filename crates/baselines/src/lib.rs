//! # essat-baselines — the paper's comparison protocols
//!
//! The three power-management baselines the ESSAT paper evaluates
//! against (§5):
//!
//! * [`sync`] — SYNC: a globally synchronised fixed 20%-duty schedule
//!   (S-MAC-style), period 0.2 s.
//! * [`psm`] — IEEE 802.11 PSM with traffic-advertisement extensions:
//!   beacon 0.2 s, ATIM window 25 ms, advertisement window 100 ms.
//! * [`span`] — SPAN: an always-on coordinator backbone. Includes both
//!   the paper's evaluation variant (tree non-leaves as backbone, leaves
//!   running NTS-SS) and a full implementation of SPAN's distributed
//!   election rule for ablations.
//! * [`tag`] — TinyDB/TAG level-slot scheduling behind the ESSAT
//!   `TrafficShaper` interface, for the §2 related-work comparison.
//!
//! Like the core protocols, these are engine-free state machines wired
//! into the simulator by `essat-wsn`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod psm;
pub mod span;
pub mod sync;
pub mod tag;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::policy::{AlwaysOnPolicy, PsmPolicy, SyncPolicy};
    pub use crate::psm::{PsmBeaconState, PsmSchedule, ATIM_BYTES};
    pub use crate::span::{SpanBackbone, SpanElection};
    pub use crate::sync::SyncSchedule;
    pub use crate::tag::{Tag, TagConfig};
}
