//! PSM — IEEE 802.11 power-save mode with the traffic-advertisement
//! extensions of Chen et al. \[3\] (the paper's §5 configuration: beacon
//! period 0.2 s, ATIM window 25 ms, advertisement window 100 ms).
//!
//! Behaviour modelled:
//!
//! * All nodes wake at every beacon and stay awake for the **ATIM
//!   window**, during which a node with buffered traffic announces it to
//!   each destination (small ATIM frames through the normal MAC).
//! * A node that **sent or received** an announcement stays awake through
//!   the **advertisement window** that follows, where the announced data
//!   frames are exchanged.
//! * Everyone else sleeps from the end of the ATIM window to the next
//!   beacon.
//!
//! Consequences the paper measures: a floor duty cycle of
//! `ATIM / beacon` (12.5%) even when idle, overhead ATIM traffic, and
//! per-hop latency quantised to beacon periods (a relay that receives a
//! report during the advertisement window cannot announce it until the
//! *next* ATIM window).
//!
//! [`PsmSchedule`] provides the window arithmetic; [`PsmBeaconState`]
//! tracks one node's announcements within the current beacon interval.

use std::collections::BTreeSet;

use essat_net::ids::NodeId;
use essat_sim::time::{SimDuration, SimTime};

/// ATIM frame size in bytes (802.11 management header scale).
pub const ATIM_BYTES: u32 = 28;

/// The global PSM window schedule (beacons assumed synchronised, as in
/// the paper's single-hop-clock simplification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsmSchedule {
    beacon_period: SimDuration,
    atim_window: SimDuration,
    adv_window: SimDuration,
}

impl PsmSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < atim_window`, `0 < adv_window`, and
    /// `atim_window + adv_window <= beacon_period`.
    pub fn new(
        beacon_period: SimDuration,
        atim_window: SimDuration,
        adv_window: SimDuration,
    ) -> Self {
        assert!(!atim_window.is_zero() && !adv_window.is_zero());
        assert!(
            atim_window + adv_window <= beacon_period,
            "windows exceed the beacon period"
        );
        PsmSchedule {
            beacon_period,
            atim_window,
            adv_window,
        }
    }

    /// The paper's parameters: beacon 0.2 s, ATIM 25 ms, advertisement
    /// 100 ms.
    pub fn paper() -> Self {
        PsmSchedule::new(
            SimDuration::from_millis(200),
            SimDuration::from_millis(25),
            SimDuration::from_millis(100),
        )
    }

    /// Beacon period.
    pub fn beacon_period(&self) -> SimDuration {
        self.beacon_period
    }

    /// ATIM window length.
    pub fn atim_window(&self) -> SimDuration {
        self.atim_window
    }

    /// Advertisement window length.
    pub fn adv_window(&self) -> SimDuration {
        self.adv_window
    }

    /// Start of the beacon interval containing `t`.
    pub fn beacon_start(&self, t: SimTime) -> SimTime {
        let k = t.as_nanos() / self.beacon_period.as_nanos();
        SimTime::from_nanos(k * self.beacon_period.as_nanos())
    }

    /// Start of the beacon interval after the one containing `t`.
    pub fn next_beacon(&self, t: SimTime) -> SimTime {
        self.beacon_start(t) + self.beacon_period
    }

    /// True while `t` is inside the ATIM window of its beacon interval.
    pub fn in_atim_window(&self, t: SimTime) -> bool {
        t - self.beacon_start(t) < self.atim_window
    }

    /// End of the ATIM window of the interval containing `t`.
    pub fn atim_end(&self, t: SimTime) -> SimTime {
        self.beacon_start(t) + self.atim_window
    }

    /// End of the advertisement window of the interval containing `t`.
    pub fn adv_end(&self, t: SimTime) -> SimTime {
        self.beacon_start(t) + self.atim_window + self.adv_window
    }

    /// True while `t` is inside the advertisement window.
    pub fn in_adv_window(&self, t: SimTime) -> bool {
        let off = t - self.beacon_start(t);
        off >= self.atim_window && off < self.atim_window + self.adv_window
    }
}

/// One node's announcement bookkeeping for the current beacon interval.
#[derive(Debug, Clone, Default)]
pub struct PsmBeaconState {
    announced_to: BTreeSet<NodeId>,
    acked_by: BTreeSet<NodeId>,
    heard_from: BTreeSet<NodeId>,
}

impl PsmBeaconState {
    /// Fresh state at a beacon boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears everything (call at each beacon).
    pub fn reset(&mut self) {
        self.announced_to.clear();
        self.acked_by.clear();
        self.heard_from.clear();
    }

    /// Records that we sent an ATIM to `dest` this interval. Returns
    /// `false` if one was already sent (suppress duplicates).
    pub fn announce(&mut self, dest: NodeId) -> bool {
        self.announced_to.insert(dest)
    }

    /// Records that `dest` acknowledged our ATIM (its MAC-level ACK or
    /// ATIM-ACK arrived): we may transmit data to it this interval.
    pub fn announce_confirmed(&mut self, dest: NodeId) {
        self.acked_by.insert(dest);
    }

    /// Records an incoming ATIM from `src`: we must stay awake to
    /// receive its data.
    pub fn atim_received(&mut self, src: NodeId) {
        self.heard_from.insert(src);
    }

    /// True if this node must stay awake through the advertisement
    /// window (it announced traffic or was announced to).
    pub fn must_stay_awake(&self) -> bool {
        !self.announced_to.is_empty() || !self.heard_from.is_empty()
    }

    /// True if data for `dest` may be released this interval (the
    /// destination is known awake).
    pub fn may_send_to(&self, dest: NodeId) -> bool {
        self.acked_by.contains(&dest)
    }

    /// Destinations announced this interval.
    pub fn announced(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.announced_to.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn paper_windows() {
        let p = PsmSchedule::paper();
        assert_eq!(p.beacon_period(), SimDuration::from_millis(200));
        assert!(p.in_atim_window(ms(0)));
        assert!(p.in_atim_window(ms(24)));
        assert!(!p.in_atim_window(ms(25)));
        assert!(p.in_adv_window(ms(25)));
        assert!(p.in_adv_window(ms(124)));
        assert!(!p.in_adv_window(ms(125)));
        assert_eq!(p.atim_end(ms(7)), ms(25));
        assert_eq!(p.adv_end(ms(7)), ms(125));
    }

    #[test]
    fn beacon_arithmetic() {
        let p = PsmSchedule::paper();
        assert_eq!(p.beacon_start(ms(450)), ms(400));
        assert_eq!(p.next_beacon(ms(450)), ms(600));
        assert!(p.in_atim_window(ms(410)));
        assert_eq!(p.atim_end(ms(410)), ms(425));
    }

    #[test]
    #[should_panic(expected = "exceed the beacon period")]
    fn oversized_windows_rejected() {
        let _ = PsmSchedule::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(60),
            SimDuration::from_millis(60),
        );
    }

    #[test]
    fn beacon_state_flow() {
        let mut st = PsmBeaconState::new();
        assert!(!st.must_stay_awake(), "idle node sleeps after ATIM window");
        assert!(st.announce(NodeId::new(2)));
        assert!(!st.announce(NodeId::new(2)), "duplicate suppressed");
        assert!(st.must_stay_awake());
        assert!(!st.may_send_to(NodeId::new(2)), "not yet confirmed");
        st.announce_confirmed(NodeId::new(2));
        assert!(st.may_send_to(NodeId::new(2)));
        st.reset();
        assert!(!st.must_stay_awake());
        assert!(!st.may_send_to(NodeId::new(2)));
    }

    #[test]
    fn receiver_side_stays_awake() {
        let mut st = PsmBeaconState::new();
        st.atim_received(NodeId::new(9));
        assert!(st.must_stay_awake());
    }

    #[test]
    fn announced_iterates() {
        let mut st = PsmBeaconState::new();
        st.announce(NodeId::new(3));
        st.announce(NodeId::new(1));
        let v: Vec<NodeId> = st.announced().collect();
        assert_eq!(v, vec![NodeId::new(1), NodeId::new(3)]);
    }
}
