//! TAG/TinyDB-style level slotting, as a [`TrafficShaper`].
//!
//! The paper's related work (§2) describes TinyDB's communication
//! scheduling: it "evenly divides the period of a query into
//! communication slots for nodes at different levels in the routing
//! tree, and nodes can sleep in slots assigned to other levels", but
//! "does not address sleep scheduling for multiple queries with
//! different timing properties" and keeps each node's duty cycle fixed.
//!
//! This module implements that scheme behind the same
//! [`TrafficShaper`] interface as the ESSAT shapers, so it can run in
//! the full simulator as the `TAG-SS` protocol and be compared head to
//! head. The contrast with STS is instructive: TAG slots by **level**
//! (hops from the root), STS by **rank** (height of the subtree). On a
//! path the two coincide; on realistic, unbalanced trees a shallow leaf
//! under TAG waits out all deeper levels' slots before transmitting —
//! rank-based slotting lets it send in the very first slot.
//!
//! ```text
//! slot width  l = D / max_level
//! s(k)        = φ + k·P + l · (max_level − level)     (level ≥ 1)
//! r(k, c)     = s_c(k) = φ + k·P + l · (max_level − level − 1)
//! ```

use std::collections::BTreeMap;

use essat_core::shaper::{Expectations, Release, ShaperKind, TrafficShaper, TreeInfo};
use essat_net::ids::NodeId;
use essat_query::model::{Query, QueryId};
use essat_sim::time::{SimDuration, SimTime};

/// Configuration for [`Tag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TagConfig {
    /// Extra grace beyond the node's send slot before a round is sealed
    /// partially.
    pub timeout_margin: SimDuration,
}

/// The TAG/TinyDB level-slot shaper.
#[derive(Debug, Clone, Default)]
pub struct Tag {
    config: TagConfig,
    next_send_round: BTreeMap<QueryId, u64>,
    next_recv_round: BTreeMap<(QueryId, NodeId), u64>,
}

impl Tag {
    /// Creates a TAG shaper with the default configuration.
    pub fn new() -> Self {
        Tag::default()
    }

    /// Creates a TAG shaper with an explicit configuration.
    pub fn with_config(config: TagConfig) -> Self {
        Tag {
            config,
            ..Tag::default()
        }
    }

    /// Slot width `l = D / max_level` (clamped for single-node trees).
    pub fn slot_width(q: &Query, tree: &TreeInfo<'_>) -> SimDuration {
        q.deadline / tree.max_level.max(1) as u64
    }

    /// This node's send slot for round `k`: deeper levels go first.
    fn send_slot(q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        let slots_before = tree.max_level.saturating_sub(tree.own_level) as u64;
        q.round_start(k) + Self::slot_width(q, tree) * slots_before
    }

    /// Children sit one level deeper, hence one slot earlier.
    fn recv_slot(q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        let child_level = tree.own_level + 1;
        let slots_before = tree.max_level.saturating_sub(child_level) as u64;
        q.round_start(k) + Self::slot_width(q, tree) * slots_before
    }
}

impl TrafficShaper for Tag {
    fn kind(&self) -> ShaperKind {
        // TAG is a static, topology-derived schedule like STS; it reuses
        // the static family tag for display purposes.
        ShaperKind::Sts
    }

    fn register(&mut self, q: &Query, tree: &TreeInfo<'_>, is_root: bool) -> Expectations {
        self.next_send_round.insert(q.id, 0);
        for &(c, _) in tree.children {
            self.next_recv_round.insert((q.id, c), 0);
        }
        Expectations {
            snext: (!is_root).then(|| Self::send_slot(q, 0, tree)),
            rnext: tree
                .children
                .iter()
                .map(|&(c, _)| (c, Self::recv_slot(q, 0, tree)))
                .collect(),
        }
    }

    fn deregister(&mut self, q: &Query) {
        self.next_send_round.remove(&q.id);
        self.next_recv_round.retain(|&(qq, _), _| qq != q.id);
    }

    fn release(&mut self, q: &Query, k: u64, ready_at: SimTime, tree: &TreeInfo<'_>) -> Release {
        Release {
            send_at: ready_at.max(Self::send_slot(q, k, tree)),
            piggyback: None,
        }
    }

    fn after_send(&mut self, q: &Query, k: u64, _now: SimTime, tree: &TreeInfo<'_>) -> SimTime {
        self.next_send_round.insert(q.id, k + 1);
        Self::send_slot(q, k + 1, tree)
    }

    fn after_receive(
        &mut self,
        q: &Query,
        child: NodeId,
        k: u64,
        _now: SimTime,
        _piggyback: Option<SimTime>,
        tree: &TreeInfo<'_>,
    ) -> SimTime {
        self.next_recv_round.insert((q.id, child), k + 1);
        Self::recv_slot(q, k + 1, tree)
    }

    fn collection_deadline(&self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        Self::send_slot(q, k, tree) + self.config.timeout_margin + Self::slot_width(q, tree)
    }

    fn child_timed_out(
        &mut self,
        q: &Query,
        child: NodeId,
        k: u64,
        tree: &TreeInfo<'_>,
    ) -> SimTime {
        self.next_recv_round.insert((q.id, child), k + 1);
        Self::recv_slot(q, k + 1, tree)
    }

    fn remove_child(&mut self, q: &Query, child: NodeId) {
        self.next_recv_round.remove(&(q.id, child));
    }

    fn on_topology_change(
        &mut self,
        q: &Query,
        tree: &TreeInfo<'_>,
        is_root: bool,
        _now: SimTime,
    ) -> Option<Expectations> {
        // Level-based schedules re-derive from the new topology, like STS.
        let k_send = self.next_send_round.get(&q.id).copied().unwrap_or(0);
        let rnext = tree
            .children
            .iter()
            .map(|&(c, _)| {
                let k = *self.next_recv_round.entry((q.id, c)).or_insert(k_send);
                (c, Self::recv_slot(q, k, tree))
            })
            .collect();
        Some(Expectations {
            snext: (!is_root).then(|| Self::send_slot(q, k_send, tree)),
            rnext,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essat_query::aggregate::AggregateOp;

    fn q() -> Query {
        // P = D = 200 ms, φ = 1 s.
        Query::periodic(
            QueryId::new(0),
            SimDuration::from_millis(200),
            SimTime::from_secs(1),
            AggregateOp::Sum,
        )
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// Level-1 node in a 4-level tree (children at level 2).
    fn level1(children: &[(NodeId, u32)]) -> TreeInfo<'_> {
        TreeInfo {
            own_rank: 3,
            max_rank: 4,
            own_level: 1,
            max_level: 4,
            children,
        }
    }

    #[test]
    fn slots_follow_levels_deepest_first() {
        // l = 200/4 = 50 ms. Level-1 sends in slot 3 (last), children at
        // level 2 in slot 2.
        let children = [(n(5), 2)];
        let tree = level1(&children);
        let mut tag = Tag::new();
        let e = tag.register(&q(), &tree, false);
        assert_eq!(e.snext, Some(ms(1150)));
        assert_eq!(e.rnext, vec![(n(5), ms(1100))]);
        // A deepest-level leaf sends in the first slot.
        let leaf = TreeInfo {
            own_rank: 0,
            max_rank: 4,
            own_level: 4,
            max_level: 4,
            children: &[],
        };
        let e_leaf = tag.register(&q(), &leaf, false);
        assert_eq!(e_leaf.snext, Some(ms(1000)));
    }

    #[test]
    fn shallow_leaf_pays_the_level_penalty() {
        // The structural difference vs STS: a *shallow* leaf (level 1 in
        // a 4-level tree) still waits for slot 3 under TAG, whereas
        // STS's rank-0 slot would let it send immediately.
        let shallow_leaf = TreeInfo {
            own_rank: 0,
            max_rank: 4,
            own_level: 1,
            max_level: 4,
            children: &[],
        };
        let mut tag = Tag::new();
        let e = tag.register(&q(), &shallow_leaf, false);
        assert_eq!(e.snext, Some(ms(1150)), "waits out deeper levels' slots");
    }

    #[test]
    fn early_buffer_late_immediate() {
        let children = [(n(5), 2)];
        let tree = level1(&children);
        let mut tag = Tag::new();
        tag.register(&q(), &tree, false);
        let early = tag.release(&q(), 0, ms(1010), &tree);
        assert_eq!(early.send_at, ms(1150));
        assert_eq!(early.piggyback, None);
        let late = tag.release(&q(), 1, ms(1390), &tree);
        assert_eq!(late.send_at, ms(1390));
    }

    #[test]
    fn schedule_advances_by_period() {
        let children = [(n(5), 2)];
        let tree = level1(&children);
        let mut tag = Tag::new();
        tag.register(&q(), &tree, false);
        assert_eq!(tag.after_send(&q(), 0, ms(1150), &tree), ms(1350));
        assert_eq!(
            tag.after_receive(&q(), n(5), 0, ms(1105), None, &tree),
            ms(1300)
        );
        assert_eq!(tag.child_timed_out(&q(), n(5), 1, &tree), ms(1500));
    }

    #[test]
    fn deadline_one_slot_past_send() {
        let children = [(n(5), 2)];
        let tree = level1(&children);
        let tag = Tag::new();
        assert_eq!(tag.collection_deadline(&q(), 0, &tree), ms(1200));
    }

    #[test]
    fn topology_change_rederives() {
        let children = [(n(5), 2)];
        let tree = level1(&children);
        let mut tag = Tag::new();
        tag.register(&q(), &tree, false);
        tag.after_send(&q(), 0, ms(1150), &tree);
        // The tree deepens to 5 levels: slot width shrinks to 40 ms and
        // this node (still level 1) moves to slot 4.
        let deeper = TreeInfo {
            own_rank: 4,
            max_rank: 5,
            own_level: 1,
            max_level: 5,
            children: &children,
        };
        let e = tag
            .on_topology_change(&q(), &deeper, false, ms(1200))
            .expect("TAG re-derives like STS");
        // Next send round is 1: φ + P + 4·40 ms.
        assert_eq!(e.snext, Some(ms(1360)));
    }

    #[test]
    fn no_phase_machinery() {
        let tag = Tag::new();
        assert!(!tag.wants_phase_resync());
    }
}
