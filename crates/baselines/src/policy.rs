//! [`PowerPolicy`] implementations for the comparison baselines.
//!
//! Where the ESSAT protocols are one policy parameterised by a traffic
//! shaper ([`essat_core::policy::EssatPolicy`]), the baselines each
//! bring their own sleep discipline:
//!
//! * [`SyncPolicy`] — the global 20%-duty schedule: wake at every
//!   active-window start, sleep at its end, quantise report releases
//!   to active windows.
//! * [`PsmPolicy`] — 802.11 PSM: wake at every beacon, announce
//!   buffered traffic in the ATIM window, exchange announced data in
//!   the advertisement window, sleep the rest of the interval.
//! * [`AlwaysOnPolicy`] — the radio never sleeps (SPAN's coordinator
//!   backbone, and the ALWAYS-ON sanity baseline).
//!
//! All three drive the same protocol-agnostic executor through typed
//! [`PolicyAction`]s; none of them is special-cased in the simulator.

use std::collections::BTreeMap;

use essat_core::nts::Nts;
use essat_core::policy::{NodeView, PolicyAction, PolicyTimer, PowerPolicy, SleepTrigger};
use essat_core::shaper::{Release, TrafficShaper, TreeInfo};
use essat_net::frame::Frame;
use essat_net::ids::NodeId;
use essat_query::model::Query;
use essat_sim::time::{SimDuration, SimTime};

use crate::psm::{PsmBeaconState, PsmSchedule};
use crate::sync::SyncSchedule;

/// Grace added to the fixed-schedule baselines' collection deadlines
/// (they need roughly one schedule period per subtree level).
const SCHEDULE_DEADLINE_GRACE: SimDuration = SimDuration::from_millis(50);

/// SYNC: the globally synchronised fixed duty-cycle schedule.
#[derive(Debug)]
pub struct SyncPolicy {
    schedule: SyncSchedule,
    run_end: SimTime,
}

impl SyncPolicy {
    /// A policy following `schedule`, with its edge chain stopping at
    /// `run_end`.
    pub fn new(schedule: SyncSchedule, run_end: SimTime) -> Self {
        SyncPolicy { schedule, run_end }
    }

    fn try_sleep<P>(&self, view: &NodeView, out: &mut Vec<PolicyAction<P>>) {
        if !view.may_sleep || view.dead || !view.radio_active || !view.mac_can_suspend {
            return;
        }
        if !self.schedule.is_active(view.now) {
            out.push(PolicyAction::Suspend);
        }
    }
}

impl<P> PowerPolicy<P> for SyncPolicy {
    fn name(&self) -> &'static str {
        "SYNC"
    }

    fn collection_deadline(&self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        q.round_start(k)
            + self.schedule.period() * (tree.own_rank as u64 + 1)
            + SCHEDULE_DEADLINE_GRACE
    }

    fn plan_release(
        &mut self,
        _q: &Query,
        _k: u64,
        ready_at: SimTime,
        _tree: &TreeInfo<'_>,
    ) -> Release {
        // Transmissions are quantised to active windows — the latency
        // penalty the paper measures.
        Release {
            send_at: self.schedule.next_active_start(ready_at),
            piggyback: None,
        }
    }

    fn sleep_decision(
        &mut self,
        trigger: SleepTrigger,
        view: &NodeView,
        out: &mut Vec<PolicyAction<P>>,
    ) {
        if trigger == SleepTrigger::Boundary {
            self.try_sleep(view, out);
        }
    }

    fn initial_actions(&mut self, out: &mut Vec<PolicyAction<P>>) {
        out.push(PolicyAction::SetTimer {
            timer: PolicyTimer::SyncEdge,
            at: self.schedule.next_edge(SimTime::ZERO),
        });
    }

    fn on_timer(&mut self, timer: PolicyTimer, view: &NodeView, out: &mut Vec<PolicyAction<P>>) {
        if timer != PolicyTimer::SyncEdge {
            return;
        }
        if self.schedule.is_active(view.now) {
            out.push(PolicyAction::WakeRadio);
        } else {
            self.try_sleep(view, out);
        }
        let next = self.schedule.next_edge(view.now);
        if next < self.run_end {
            out.push(PolicyAction::SetTimer {
                timer: PolicyTimer::SyncEdge,
                at: next,
            });
        }
    }

    fn on_revive(&mut self, now: SimTime, out: &mut Vec<PolicyAction<P>>) {
        out.push(PolicyAction::SetTimer {
            timer: PolicyTimer::SyncEdge,
            at: self.schedule.next_edge(now),
        });
    }
}

/// 802.11 PSM with traffic-advertisement windows.
#[derive(Debug)]
pub struct PsmPolicy<P> {
    schedule: PsmSchedule,
    run_end: SimTime,
    beacon: PsmBeaconState,
    /// Frames buffered per destination awaiting announcement.
    pending: BTreeMap<NodeId, Vec<Frame<P>>>,
}

impl<P> PsmPolicy<P> {
    /// A policy following `schedule`, with its beacon chain stopping at
    /// `run_end`.
    pub fn new(schedule: PsmSchedule, run_end: SimTime) -> Self {
        PsmPolicy {
            schedule,
            run_end,
            beacon: PsmBeaconState::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Frames currently buffered for `dest` (tests inspect buffering).
    pub fn pending_for(&self, dest: NodeId) -> usize {
        self.pending.get(&dest).map(Vec::len).unwrap_or(0)
    }

    fn try_sleep(&self, view: &NodeView, out: &mut Vec<PolicyAction<P>>) {
        if !view.may_sleep || view.dead || !view.radio_active || !view.mac_can_suspend {
            return;
        }
        let now = view.now;
        let may_sleep = if self.schedule.in_atim_window(now) {
            false
        } else if self.schedule.in_adv_window(now) {
            !self.beacon.must_stay_awake()
        } else {
            true
        };
        if may_sleep {
            out.push(PolicyAction::Suspend);
        }
    }

    fn release_to(&mut self, dest: NodeId, view: &NodeView, out: &mut Vec<PolicyAction<P>>) {
        if view.dead || !self.beacon.may_send_to(dest) {
            return;
        }
        for frame in self.pending.remove(&dest).unwrap_or_default() {
            out.push(PolicyAction::Enqueue(frame));
        }
    }
}

impl<P: std::fmt::Debug + Send> PowerPolicy<P> for PsmPolicy<P> {
    fn name(&self) -> &'static str {
        "PSM"
    }

    fn collection_deadline(&self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        q.round_start(k)
            + self.schedule.beacon_period() * (tree.own_rank as u64 + 1)
            + SCHEDULE_DEADLINE_GRACE
    }

    fn plan_release(
        &mut self,
        _q: &Query,
        _k: u64,
        ready_at: SimTime,
        _tree: &TreeInfo<'_>,
    ) -> Release {
        // Ready reports go straight to dispatch; buffering happens
        // there.
        Release {
            send_at: ready_at,
            piggyback: None,
        }
    }

    fn dispatch_report(
        &mut self,
        frame: Frame<P>,
        dest: NodeId,
        view: &NodeView,
        out: &mut Vec<PolicyAction<P>>,
    ) {
        let now = view.now;
        let confirmed = self.beacon.may_send_to(dest);
        if confirmed && now >= self.schedule.atim_end(now) && now < self.schedule.adv_end(now) {
            // Already cleared for this beacon interval.
            out.push(PolicyAction::Enqueue(frame));
            return;
        }
        self.pending.entry(dest).or_default().push(frame);
        if self.schedule.in_atim_window(now) && self.beacon.announce(dest) {
            out.push(PolicyAction::SendAtim { dest });
        }
    }

    fn on_atim_received(&mut self, src: NodeId) {
        self.beacon.atim_received(src);
    }

    fn on_atim_sent(&mut self, dest: NodeId, view: &NodeView, out: &mut Vec<PolicyAction<P>>) {
        self.beacon.announce_confirmed(dest);
        let atim_end = self.schedule.atim_end(view.now);
        if view.now >= atim_end {
            self.release_to(dest, view, out);
        } else {
            out.push(PolicyAction::SetTimer {
                timer: PolicyTimer::PsmRelease { dest },
                at: atim_end,
            });
        }
    }

    fn sleep_decision(
        &mut self,
        trigger: SleepTrigger,
        view: &NodeView,
        out: &mut Vec<PolicyAction<P>>,
    ) {
        if trigger == SleepTrigger::Boundary {
            self.try_sleep(view, out);
        }
    }

    fn initial_actions(&mut self, out: &mut Vec<PolicyAction<P>>) {
        out.push(PolicyAction::SetTimer {
            timer: PolicyTimer::PsmBeacon,
            at: SimTime::ZERO,
        });
    }

    fn on_timer(&mut self, timer: PolicyTimer, view: &NodeView, out: &mut Vec<PolicyAction<P>>) {
        let now = view.now;
        match timer {
            PolicyTimer::PsmBeacon => {
                out.push(PolicyAction::WakeRadio);
                self.beacon.reset();
                let dests: Vec<NodeId> = self.pending.keys().copied().collect();
                for dest in dests {
                    if self.beacon.announce(dest) {
                        out.push(PolicyAction::SendAtim { dest });
                    }
                }
                out.push(PolicyAction::SetTimer {
                    timer: PolicyTimer::PsmAtimEnd,
                    at: self.schedule.atim_end(now),
                });
                let next = self.schedule.next_beacon(now);
                if next < self.run_end {
                    out.push(PolicyAction::SetTimer {
                        timer: PolicyTimer::PsmBeacon,
                        at: next,
                    });
                }
            }
            PolicyTimer::PsmAtimEnd => {
                if self.beacon.must_stay_awake() {
                    out.push(PolicyAction::SetTimer {
                        timer: PolicyTimer::PsmAdvEnd,
                        at: self.schedule.adv_end(now),
                    });
                } else {
                    self.try_sleep(view, out);
                }
            }
            PolicyTimer::PsmAdvEnd => self.try_sleep(view, out),
            PolicyTimer::PsmRelease { dest } => self.release_to(dest, view, out),
            // Repair timers are intercepted by the executor before the
            // policy dispatch and never reach any policy.
            PolicyTimer::SyncEdge | PolicyTimer::Repair { .. } | PolicyTimer::Custom { .. } => {}
        }
    }

    fn on_revive(&mut self, now: SimTime, out: &mut Vec<PolicyAction<P>>) {
        self.pending.clear();
        self.beacon = PsmBeaconState::new();
        out.push(PolicyAction::SetTimer {
            timer: PolicyTimer::PsmBeacon,
            at: self.schedule.next_beacon(now),
        });
    }
}

/// The radio never sleeps: SPAN coordinators and the ALWAYS-ON
/// baseline. `name` distinguishes the two uses in figures and tests.
#[derive(Debug)]
pub struct AlwaysOnPolicy {
    name: &'static str,
}

impl AlwaysOnPolicy {
    /// An always-on policy labelled `name` (`"ALWAYS-ON"` or `"SPAN"`).
    pub fn new(name: &'static str) -> Self {
        AlwaysOnPolicy { name }
    }
}

impl<P> PowerPolicy<P> for AlwaysOnPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn collection_deadline(&self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        // NTS's rank-proportional rule works for always-on nodes.
        Nts::new().collection_deadline(q, k, tree)
    }

    fn plan_release(
        &mut self,
        _q: &Query,
        _k: u64,
        ready_at: SimTime,
        _tree: &TreeInfo<'_>,
    ) -> Release {
        Release {
            send_at: ready_at,
            piggyback: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essat_net::frame::{Dest, FrameKind};
    use essat_query::aggregate::AggregateOp;
    use essat_query::model::QueryId;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn view(now: SimTime) -> NodeView {
        NodeView {
            now,
            dead: false,
            radio_active: true,
            mac_quiescent: true,
            mac_can_suspend: true,
            may_sleep: true,
            turn_off: SimDuration::from_micros(1_250),
        }
    }

    fn query() -> Query {
        Query::periodic(
            QueryId::new(0),
            SimDuration::from_millis(1_000),
            SimTime::ZERO,
            AggregateOp::Avg,
        )
    }

    fn frame(dest: NodeId) -> Frame<u8> {
        Frame {
            id: essat_net::frame::FrameId::new(1),
            src: NodeId::new(0),
            dest: Dest::Unicast(dest),
            kind: FrameKind::Data,
            bytes: 52,
            payload: 0,
        }
    }

    #[test]
    fn sync_sleeps_only_outside_active_windows() {
        let mut p = SyncPolicy::new(SyncSchedule::paper(), SimTime::from_secs(100));
        let mut out: Vec<PolicyAction<u8>> = Vec::new();
        // Inside the active window (paper schedule: first 40 ms): stay.
        p.sleep_decision(SleepTrigger::Boundary, &view(ms(10)), &mut out);
        assert!(out.is_empty());
        // Outside: suspend.
        p.sleep_decision(SleepTrigger::Boundary, &view(ms(60)), &mut out);
        assert!(matches!(out[..], [PolicyAction::Suspend]));
        // Quiesce triggers never put a SYNC node to sleep mid-window.
        out.clear();
        p.sleep_decision(SleepTrigger::Quiesce, &view(ms(60)), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn sync_edge_wakes_and_rechains() {
        let mut p = SyncPolicy::new(SyncSchedule::paper(), SimTime::from_secs(100));
        let mut out: Vec<PolicyAction<u8>> = Vec::new();
        // An edge at a window start wakes the radio and re-arms.
        p.on_timer(PolicyTimer::SyncEdge, &view(ms(200)), &mut out);
        assert!(matches!(out[0], PolicyAction::WakeRadio));
        assert!(matches!(
            out[1],
            PolicyAction::SetTimer {
                timer: PolicyTimer::SyncEdge,
                at
            } if at == ms(240)
        ));
        // The chain stops at the run end.
        let mut p_end = SyncPolicy::new(SyncSchedule::paper(), ms(250));
        out.clear();
        p_end.on_timer(PolicyTimer::SyncEdge, &view(ms(240)), &mut out);
        assert!(
            !out.iter()
                .any(|a| matches!(a, PolicyAction::SetTimer { .. })),
            "{out:?}"
        );
    }

    #[test]
    fn sync_release_quantised_to_active_window() {
        let mut p = SyncPolicy::new(SyncSchedule::paper(), SimTime::from_secs(100));
        let q = query();
        let rel = PowerPolicy::<u8>::plan_release(&mut p, &q, 0, ms(60), &TreeInfo::leaf(2));
        assert_eq!(rel.send_at, ms(200), "waits out the sleep window");
        let rel2 = PowerPolicy::<u8>::plan_release(&mut p, &q, 0, ms(10), &TreeInfo::leaf(2));
        assert_eq!(rel2.send_at, ms(10), "already active: send immediately");
    }

    #[test]
    fn psm_buffers_then_announces_in_atim_window() {
        let mut p = PsmPolicy::new(PsmSchedule::paper(), SimTime::from_secs(100));
        let dest = NodeId::new(7);
        let mut out = Vec::new();
        // Report ready inside the ATIM window: buffer + announce.
        p.dispatch_report(frame(dest), dest, &view(ms(10)), &mut out);
        assert!(matches!(out[..], [PolicyAction::SendAtim { dest: d }] if d == dest));
        assert_eq!(p.pending_for(dest), 1);
        // A second report for the same dest does not re-announce.
        out.clear();
        p.dispatch_report(frame(dest), dest, &view(ms(12)), &mut out);
        assert!(out.is_empty(), "duplicate announcement suppressed");
        assert_eq!(p.pending_for(dest), 2);
    }

    #[test]
    fn psm_confirmed_announcement_releases_after_atim_end() {
        let mut p = PsmPolicy::new(PsmSchedule::paper(), SimTime::from_secs(100));
        let dest = NodeId::new(7);
        let mut out = Vec::new();
        p.dispatch_report(frame(dest), dest, &view(ms(10)), &mut out);
        out.clear();
        // ACK arrives still inside the ATIM window: arm the release
        // timer for the window's end.
        p.on_atim_sent(dest, &view(ms(20)), &mut out);
        assert!(matches!(
            out[..],
            [PolicyAction::SetTimer {
                timer: PolicyTimer::PsmRelease { dest: d },
                at
            }] if d == dest && at == ms(25)
        ));
        // The timer fires: buffered data flows.
        out.clear();
        p.on_timer(PolicyTimer::PsmRelease { dest }, &view(ms(25)), &mut out);
        assert!(matches!(out[..], [PolicyAction::Enqueue(_)]));
        assert_eq!(p.pending_for(dest), 0);
    }

    #[test]
    fn psm_beacon_wakes_announces_and_rechains() {
        let mut p = PsmPolicy::new(PsmSchedule::paper(), SimTime::from_secs(100));
        let dest = NodeId::new(3);
        let mut out = Vec::new();
        // Buffer outside the ATIM window (no announcement possible).
        p.dispatch_report(frame(dest), dest, &view(ms(150)), &mut out);
        assert!(out.is_empty());
        out.clear();
        // The next beacon announces it.
        p.on_timer(PolicyTimer::PsmBeacon, &view(ms(200)), &mut out);
        assert!(matches!(out[0], PolicyAction::WakeRadio));
        assert!(matches!(out[1], PolicyAction::SendAtim { dest: d } if d == dest));
        assert!(matches!(
            out[2],
            PolicyAction::SetTimer {
                timer: PolicyTimer::PsmAtimEnd,
                at
            } if at == ms(225)
        ));
        assert!(matches!(
            out[3],
            PolicyAction::SetTimer {
                timer: PolicyTimer::PsmBeacon,
                at
            } if at == ms(400)
        ));
    }

    #[test]
    fn psm_idle_node_sleeps_at_atim_end() {
        let mut p = PsmPolicy::new(PsmSchedule::paper(), SimTime::from_secs(100));
        let mut out: Vec<PolicyAction<u8>> = Vec::new();
        p.on_timer(PolicyTimer::PsmAtimEnd, &view(ms(25)), &mut out);
        assert!(
            matches!(out[..], [PolicyAction::Suspend]),
            "idle node sleeps through the advertisement window: {out:?}"
        );
        // A node that heard an announcement stays awake until AdvEnd.
        let mut busy = PsmPolicy::new(PsmSchedule::paper(), SimTime::from_secs(100));
        PowerPolicy::<u8>::on_atim_received(&mut busy, NodeId::new(9));
        out.clear();
        busy.on_timer(PolicyTimer::PsmAtimEnd, &view(ms(25)), &mut out);
        assert!(matches!(
            out[..],
            [PolicyAction::SetTimer {
                timer: PolicyTimer::PsmAdvEnd,
                at
            }] if at == ms(125)
        ));
    }

    #[test]
    fn psm_revival_resets_interval_state() {
        let mut p = PsmPolicy::new(PsmSchedule::paper(), SimTime::from_secs(100));
        let dest = NodeId::new(3);
        let mut out = Vec::new();
        p.dispatch_report(frame(dest), dest, &view(ms(10)), &mut out);
        out.clear();
        p.on_revive(ms(310), &mut out);
        assert_eq!(p.pending_for(dest), 0, "buffered frames dropped at death");
        assert!(matches!(
            out[..],
            [PolicyAction::SetTimer {
                timer: PolicyTimer::PsmBeacon,
                at
            }] if at == ms(400)
        ));
    }

    #[test]
    fn always_on_never_sleeps() {
        let mut p = AlwaysOnPolicy::new("ALWAYS-ON");
        let mut out: Vec<PolicyAction<u8>> = Vec::new();
        p.sleep_decision(SleepTrigger::Boundary, &view(ms(60)), &mut out);
        p.sleep_decision(SleepTrigger::Quiesce, &view(ms(60)), &mut out);
        assert!(out.is_empty());
        assert_eq!(PowerPolicy::<u8>::name(&p), "ALWAYS-ON");
        let rel = PowerPolicy::<u8>::plan_release(&mut p, &query(), 0, ms(60), &TreeInfo::leaf(2));
        assert_eq!(rel.send_at, ms(60), "greedy forwarding");
    }
}
