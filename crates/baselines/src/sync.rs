//! SYNC — synchronous fixed duty-cycle wakeup (the paper's §5 baseline,
//! modelled on S-MAC-style schedules \[16\]).
//!
//! All nodes share one global periodic schedule: each period of length
//! `T` starts with an active window of `duty × T` during which radios are
//! on and frames may be exchanged; the rest of the period everyone
//! sleeps. The paper configures 20% duty at a 0.2 s period.
//!
//! The inherent weakness the paper measures: transmissions are
//! quantised to active windows, so a report that misses the window — or
//! needs several hops — waits out whole sleep windows, inflating query
//! latency regardless of the workload's timing.
//!
//! # Examples
//!
//! ```
//! use essat_baselines::sync::SyncSchedule;
//! use essat_sim::time::{SimDuration, SimTime};
//!
//! let s = SyncSchedule::paper(); // 20% of 0.2 s -> 40 ms active
//! assert!(s.is_active(SimTime::from_millis(30)));
//! assert!(!s.is_active(SimTime::from_millis(50)));
//! assert_eq!(
//!     s.next_active_start(SimTime::from_millis(50)),
//!     SimTime::from_millis(200)
//! );
//! ```

use essat_sim::time::{SimDuration, SimTime};

/// The global synchronized schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncSchedule {
    period: SimDuration,
    active: SimDuration,
}

impl SyncSchedule {
    /// Creates a schedule with the given period and duty-cycle fraction.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `duty` is not within `(0, 1]`.
    pub fn new(period: SimDuration, duty: f64) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        assert!(
            duty > 0.0 && duty <= 1.0,
            "duty cycle must be in (0, 1], got {duty}"
        );
        let active =
            SimDuration::from_nanos((period.as_nanos() as f64 * duty).round().max(1.0) as u64);
        SyncSchedule { period, active }
    }

    /// The paper's configuration: 20% duty cycle, 0.2 s period (chosen to
    /// coincide with the highest experimental data rate of 5 Hz).
    pub fn paper() -> Self {
        SyncSchedule::new(SimDuration::from_millis(200), 0.2)
    }

    /// The schedule period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The active-window length.
    pub fn active_window(&self) -> SimDuration {
        self.active
    }

    /// The configured duty-cycle fraction.
    pub fn duty(&self) -> f64 {
        self.active.as_nanos() as f64 / self.period.as_nanos() as f64
    }

    /// Start of the period containing `t`.
    pub fn period_start(&self, t: SimTime) -> SimTime {
        let k = t.as_nanos() / self.period.as_nanos();
        SimTime::from_nanos(k * self.period.as_nanos())
    }

    /// True if `t` lies inside an active window.
    pub fn is_active(&self, t: SimTime) -> bool {
        t - self.period_start(t) < self.active
    }

    /// The current (or next) active-window start: `t` itself if active,
    /// otherwise the start of the next period.
    pub fn next_active_start(&self, t: SimTime) -> SimTime {
        if self.is_active(t) {
            t
        } else {
            self.period_start(t) + self.period
        }
    }

    /// End of the active window of the period containing `t`.
    pub fn active_end(&self, t: SimTime) -> SimTime {
        self.period_start(t) + self.active
    }

    /// The next schedule edge strictly after `t`: the instant the radio
    /// must toggle (active→sleep or sleep→active).
    pub fn next_edge(&self, t: SimTime) -> SimTime {
        if self.is_active(t) {
            self.active_end(t)
        } else {
            self.period_start(t) + self.period
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn paper_schedule_shape() {
        let s = SyncSchedule::paper();
        assert_eq!(s.period(), SimDuration::from_millis(200));
        assert_eq!(s.active_window(), SimDuration::from_millis(40));
        assert!((s.duty() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn activity_windows() {
        let s = SyncSchedule::paper();
        assert!(s.is_active(ms(0)));
        assert!(s.is_active(ms(39)));
        assert!(!s.is_active(ms(40)));
        assert!(!s.is_active(ms(199)));
        assert!(s.is_active(ms(200)));
        assert!(s.is_active(ms(205)));
    }

    #[test]
    fn next_active_start_quantises() {
        let s = SyncSchedule::paper();
        assert_eq!(s.next_active_start(ms(10)), ms(10), "already active");
        assert_eq!(s.next_active_start(ms(40)), ms(200));
        assert_eq!(s.next_active_start(ms(199)), ms(200));
        assert_eq!(s.next_active_start(ms(430)), ms(430), "inside window");
        assert_eq!(s.next_active_start(ms(450)), ms(600));
    }

    #[test]
    fn edges_alternate() {
        let s = SyncSchedule::paper();
        assert_eq!(s.next_edge(ms(0)), ms(40));
        assert_eq!(s.next_edge(ms(40)), ms(200));
        assert_eq!(s.next_edge(ms(200)), ms(240));
        // Walking edges never stalls.
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            let e = s.next_edge(t);
            assert!(e > t);
            t = e;
        }
        assert_eq!(t, ms(2000));
    }

    #[test]
    fn full_duty_always_active() {
        let s = SyncSchedule::new(SimDuration::from_millis(100), 1.0);
        for v in [0u64, 50, 99, 100, 1234] {
            assert!(s.is_active(ms(v)));
        }
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn zero_duty_rejected() {
        let _ = SyncSchedule::new(SimDuration::from_millis(100), 0.0);
    }

    #[test]
    fn active_end_and_period_start() {
        let s = SyncSchedule::paper();
        assert_eq!(s.period_start(ms(350)), ms(200));
        assert_eq!(s.active_end(ms(350)), ms(240));
    }
}
