//! Per-link Gilbert–Elliott bursty loss processes.
//!
//! Each directed link `(sender, receiver)` carries an independent
//! two-state continuous-time Markov chain: a **good** state and a
//! **bad** (burst) state with exponentially distributed sojourn times
//! and per-state drop probabilities. This replaces the single static
//! `drop_probability` of the paper's §4.3 loss experiments with the
//! burst structure real low-power links exhibit — losses cluster, so a
//! schedule that survives uniform loss can still collapse inside a
//! burst.
//!
//! # Determinism and the hot path
//!
//! Link states are advanced **lazily**: a link's chain is only sampled
//! when a frame copy actually lands on it, from a per-link RNG stream
//! derived from `(seed, link id)`. The number of draws a link performs
//! up to simulated time `t` depends only on `t`, so runs are
//! bit-reproducible regardless of which other links are exercised.
//! One [`GilbertElliott::dropped`] call in steady state is a couple of
//! comparisons plus at most the transitions that elapsed since the
//! link was last sampled (the `micro/gilbert_elliott_step` benchmark
//! tracks this path).

use essat_net::channel::LossModel;
use essat_net::ids::NodeId;
use essat_sim::rng::SimRng;
use essat_sim::time::{SimDuration, SimTime};

/// Parameters of the two-state loss chain, shared by every link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottParams {
    /// Mean sojourn in the good state.
    pub mean_good: SimDuration,
    /// Mean sojourn in the bad (burst) state.
    pub mean_bad: SimDuration,
    /// Per-copy drop probability while good.
    pub drop_good: f64,
    /// Per-copy drop probability while bad.
    pub drop_bad: f64,
}

impl GilbertElliottParams {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on zero sojourn means or probabilities outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(!self.mean_good.is_zero(), "mean good sojourn is zero");
        assert!(!self.mean_bad.is_zero(), "mean bad sojourn is zero");
        assert!(
            (0.0..=1.0).contains(&self.drop_good),
            "drop_good out of range: {}",
            self.drop_good
        );
        assert!(
            (0.0..=1.0).contains(&self.drop_bad),
            "drop_bad out of range: {}",
            self.drop_bad
        );
    }

    /// Stationary probability of the bad state.
    pub fn stationary_bad(&self) -> f64 {
        let g = self.mean_good.as_secs_f64();
        let b = self.mean_bad.as_secs_f64();
        b / (g + b)
    }

    /// Long-run average drop probability (sanity anchor for tests).
    pub fn stationary_drop(&self) -> f64 {
        let pb = self.stationary_bad();
        pb * self.drop_bad + (1.0 - pb) * self.drop_good
    }
}

/// One link's chain, advanced lazily from time zero.
#[derive(Debug, Clone)]
struct LinkState {
    bad: bool,
    /// When the current sojourn ends.
    until: SimTime,
    rng: SimRng,
}

/// The per-link loss model: `n × n` lazily materialised chains.
///
/// Memory is proportional to the number of *exercised* directed links
/// (a slot per possible link, a chain only where traffic landed),
/// which at the paper's 80-node scale is a few hundred kilobytes.
#[derive(Debug)]
pub struct GilbertElliott {
    params: GilbertElliottParams,
    n: usize,
    links: Vec<Option<LinkState>>,
    master: SimRng,
}

impl GilbertElliott {
    /// A model over `n` nodes, seeded by `master` (derive it from the
    /// run's master seed so replays reproduce the same bursts).
    pub fn new(n: usize, params: GilbertElliottParams, master: SimRng) -> Self {
        params.validate();
        GilbertElliott {
            params,
            n,
            links: vec![None; n * n],
            master,
        }
    }

    /// The shared chain parameters.
    pub fn params(&self) -> &GilbertElliottParams {
        &self.params
    }

    fn link_index(&self, sender: NodeId, receiver: NodeId) -> usize {
        sender.index() * self.n + receiver.index()
    }

    /// Advances the link's chain to `now` and returns whether it is in
    /// the bad state.
    fn bad_at(&mut self, now: SimTime, link: usize) -> bool {
        let params = self.params;
        let state = self.links[link].get_or_insert_with(|| {
            let mut rng = self.master.derive(link as u64);
            // Start from the stationary distribution at time zero.
            let bad = rng.chance(params.stationary_bad());
            let mean = if bad {
                params.mean_bad
            } else {
                params.mean_good
            };
            let sojourn = SimDuration::from_secs_f64(rng.exp(mean.as_secs_f64()));
            LinkState {
                bad,
                until: SimTime::ZERO + sojourn,
                rng,
            }
        });
        while state.until <= now {
            state.bad = !state.bad;
            let mean = if state.bad {
                params.mean_bad
            } else {
                params.mean_good
            };
            let sojourn = SimDuration::from_secs_f64(state.rng.exp(mean.as_secs_f64()));
            state.until += sojourn;
        }
        state.bad
    }
}

impl LossModel for GilbertElliott {
    fn dropped(&mut self, now: SimTime, sender: NodeId, receiver: NodeId) -> bool {
        let link = self.link_index(sender, receiver);
        let bad = self.bad_at(now, link);
        let p = if bad {
            self.params.drop_bad
        } else {
            self.params.drop_good
        };
        if p <= 0.0 {
            return false;
        }
        let state = self.links[link].as_mut().expect("materialised by bad_at");
        state.rng.chance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> GilbertElliottParams {
        GilbertElliottParams {
            mean_good: SimDuration::from_secs(4),
            mean_bad: SimDuration::from_secs(1),
            drop_good: 0.0,
            drop_bad: 0.8,
        }
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn stationary_math() {
        let p = params();
        assert!((p.stationary_bad() - 0.2).abs() < 1e-12);
        assert!((p.stationary_drop() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn long_run_drop_rate_near_stationary() {
        let mut ge = GilbertElliott::new(4, params(), SimRng::seed_from_u64(11));
        let mut drops = 0u64;
        let trials = 40_000u64;
        // One copy every 25 ms for 1000 s of simulated time.
        for i in 0..trials {
            if ge.dropped(SimTime::from_millis(i * 25), n(0), n(1)) {
                drops += 1;
            }
        }
        let frac = drops as f64 / trials as f64;
        let expect = params().stationary_drop();
        assert!(
            (frac - expect).abs() < 0.03,
            "empirical {frac}, stationary {expect}"
        );
    }

    #[test]
    fn losses_are_bursty_not_uniform() {
        // With the same long-run drop rate, GE losses must cluster:
        // the chance that a loss is followed by another loss is much
        // higher than the marginal loss rate.
        let mut ge = GilbertElliott::new(2, params(), SimRng::seed_from_u64(5));
        let mut prev = false;
        let (mut after_loss, mut loss_after_loss, mut losses) = (0u64, 0u64, 0u64);
        let trials = 60_000u64;
        for i in 0..trials {
            let d = ge.dropped(SimTime::from_millis(i * 20), n(0), n(1));
            if prev {
                after_loss += 1;
                if d {
                    loss_after_loss += 1;
                }
            }
            if d {
                losses += 1;
            }
            prev = d;
        }
        let marginal = losses as f64 / trials as f64;
        let conditional = loss_after_loss as f64 / after_loss as f64;
        assert!(
            conditional > 2.0 * marginal,
            "losses should cluster: P(loss|loss) = {conditional:.3} vs P(loss) = {marginal:.3}"
        );
    }

    #[test]
    fn deterministic_per_link_and_independent_of_other_links() {
        let run = |touch_other: bool| {
            let mut ge = GilbertElliott::new(3, params(), SimRng::seed_from_u64(7));
            let mut out = Vec::new();
            for i in 0..500u64 {
                if touch_other {
                    let _ = ge.dropped(SimTime::from_millis(i * 30), n(1), n(2));
                }
                out.push(ge.dropped(SimTime::from_millis(i * 30), n(0), n(1)));
            }
            out
        };
        assert_eq!(run(false), run(true), "links must not couple");
    }

    #[test]
    fn directed_links_are_independent() {
        let mut ge = GilbertElliott::new(2, params(), SimRng::seed_from_u64(9));
        let mut fwd = Vec::new();
        let mut rev = Vec::new();
        for i in 0..2_000u64 {
            let t = SimTime::from_millis(i * 40);
            fwd.push(ge.dropped(t, n(0), n(1)));
            rev.push(ge.dropped(t, n(1), n(0)));
        }
        assert_ne!(fwd, rev, "independent chains should diverge");
    }

    #[test]
    #[should_panic(expected = "mean good sojourn is zero")]
    fn zero_sojourn_rejected() {
        let p = GilbertElliottParams {
            mean_good: SimDuration::ZERO,
            ..params()
        };
        GilbertElliott::new(2, p, SimRng::seed_from_u64(1));
    }
}
