//! # essat-scenario — dynamic environments for ESSAT experiments
//!
//! The paper evaluates ESSAT under a single static environment: uniform
//! per-frame loss, a fixed topology, and infinite batteries. This crate
//! makes the environment *move* while a run executes, which is exactly
//! where timing-semantics-driven sleeping is stressed hardest:
//!
//! * [`gilbert`] — per-link **Gilbert–Elliott** bursty loss processes
//!   (good/bad Markov states with configurable sojourn times and
//!   per-state drop probabilities), plugged into the channel through
//!   `essat-net`'s `LossModel` hook.
//! * [`spec`] — the declarative [`spec::ScenarioSpec`]: link burstiness,
//!   a per-node battery (drained by the radio's energy accounting),
//!   node **churn** schedules (failure *and* recovery, scripted,
//!   periodic, or randomized), and **traffic phases** that rescale the
//!   workload rate mid-run (quiet/burst diurnal patterns).
//! * [`compile`] — [`compile::CompiledScenario`]: every spec compiles —
//!   deterministically, from the master seed — into an explicit,
//!   time-sorted event stream plus parameter blocks.
//! * [`trace`] — the record/replay codec: a compiled scenario
//!   serialises to a plain-text trace and parses back **byte-
//!   identically**, so a recorded run can be replayed exactly.
//! * [`presets`] — the library used by the harness's `lifetime` and
//!   `robustness` figures: `steady`, `bursty_links`, `diurnal`,
//!   `churn`, `energy_drain`.
//!
//! The simulator (`essat-wsn`) owns the interpretation of the event
//! stream; this crate holds only pure data and the loss processes, so
//! it depends on nothing above `essat-net`.
//!
//! ## Example
//!
//! ```
//! use essat_scenario::presets;
//! use essat_scenario::spec::Scenario;
//! use essat_sim::time::SimDuration;
//!
//! let run = SimDuration::from_secs(50);
//! let spec = presets::by_name("bursty_links", run).unwrap();
//! let compiled = spec.compile(40, 7, run, 2024);
//! // Record…
//! let trace = compiled.to_trace();
//! // …and replay byte-identically.
//! let replayed = essat_scenario::compile::CompiledScenario::from_trace(&trace).unwrap();
//! assert_eq!(compiled, replayed);
//! assert_eq!(trace, replayed.to_trace());
//! let _cfg_field = Scenario::Trace(trace);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod gilbert;
pub mod presets;
pub mod spec;
pub mod trace;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::compile::{CompiledScenario, ScenarioEvent};
    pub use crate::gilbert::{GilbertElliott, GilbertElliottParams};
    pub use crate::presets;
    pub use crate::spec::{BatterySpec, ChurnSpec, Scenario, ScenarioSpec, TrafficPhase};
}
