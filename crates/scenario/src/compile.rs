//! Compilation: from declarative spec to an explicit event stream.
//!
//! A [`CompiledScenario`] is plain data — churn events sorted by
//! `(time, node, direction)`, traffic phases, and the link/battery
//! parameter blocks. It is what the simulator consumes, what
//! [`to_trace`](CompiledScenario::to_trace) records, and what
//! [`from_trace`](CompiledScenario::from_trace) replays. Compilation is
//! a pure function of `(spec, nodes, root, duration, seed)`: randomized
//! churn draws from a derived RNG stream, never from ambient state.

use essat_sim::rng::SimRng;
use essat_sim::time::{SimDuration, SimTime};

use crate::gilbert::GilbertElliottParams;
use crate::spec::{BatterySpec, ChurnSpec, GlitchStep, ScenarioSpec, TrafficPhase};

/// RNG stream label for churn compilation (disjoint from the
/// simulator's streams, which use small labels).
const CHURN_STREAM: u64 = 0x5CE7_A210;

/// RNG stream label for per-node clock-fault compilation.
const CLOCK_STREAM: u64 = 0xC10C_FA17;

/// One churn event in the compiled stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioEvent {
    /// When it fires.
    pub at: SimTime,
    /// Target node index.
    pub node: u32,
    /// `true` = recovery, `false` = failure.
    pub up: bool,
}

/// One node's compiled clock personality: a constant frequency skew
/// plus a linearly growing drift-rate, both in integer parts-per-
/// billion so the trace codec round-trips exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeClock {
    /// Constant frequency error in ppb (positive = the clock runs
    /// fast).
    pub skew_ppb: i64,
    /// Rate-error growth in ppb per second (the oscillator ages).
    pub drift_ppb_per_s: i64,
}

/// The fully compiled scenario: what a run executes and a trace stores.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledScenario {
    /// Scenario name (carried into the trace header).
    pub name: String,
    /// Node count the stream was compiled for.
    pub nodes: u32,
    /// Per-link bursty loss, if enabled.
    pub link: Option<GilbertElliottParams>,
    /// Battery model, if enabled.
    pub battery: Option<BatterySpec>,
    /// Churn events sorted by `(time, node, up)`.
    pub events: Vec<ScenarioEvent>,
    /// Traffic phases sorted by start time.
    pub traffic: Vec<TrafficPhase>,
    /// Per-node clocks (empty = every clock is perfect). When
    /// non-empty the vector has exactly [`Self::nodes`] entries.
    pub clocks: Vec<NodeClock>,
    /// Scripted clock steps sorted by `(at, node)`.
    pub glitches: Vec<GlitchStep>,
}

impl CompiledScenario {
    /// The workload rate scale in effect at `t` (1.0 before the first
    /// phase or when no phases are configured).
    pub fn traffic_scale_at(&self, t: SimTime) -> f64 {
        let mut scale = 1.0;
        for p in &self.traffic {
            if p.from <= t {
                scale = p.rate_scale;
            } else {
                break;
            }
        }
        scale
    }

    /// Whether round `k` of a query is active under the phase schedule.
    ///
    /// Decimation is Bresenham-style against the scale in effect at the
    /// round's start: round `k` runs iff `⌊(k+1)·s⌋ > ⌊k·s⌋`. This is a
    /// pure function of `(schedule, round_start, k)`, so every node —
    /// source, relay, root — agrees on the active set without any
    /// signalling.
    pub fn round_active(&self, round_start: SimTime, k: u64) -> bool {
        if self.traffic.is_empty() {
            return true;
        }
        let s = self.traffic_scale_at(round_start);
        if s >= 1.0 {
            return true;
        }
        if s <= 0.0 {
            return false;
        }
        ((k + 1) as f64 * s).floor() > (k as f64 * s).floor()
    }

    /// The signed local-clock error of `node` at wall time `t`, in
    /// nanoseconds: `skew·t + drift·t²/2` plus every scripted glitch at
    /// or before `t`. Pure integer arithmetic (i128 intermediates), so
    /// live runs and trace replays agree bit for bit.
    ///
    /// Returns 0 when clock faults are not enabled.
    pub fn clock_err_ns(&self, node: u32, t: SimTime) -> i64 {
        if self.clocks.is_empty() {
            return 0;
        }
        let c = self.clocks[node as usize];
        let tn = t.as_nanos() as i128;
        // skew ppb over tn nanoseconds.
        let mut err = c.skew_ppb as i128 * tn / 1_000_000_000;
        // Rate error grows by `drift` ppb each second: accumulated
        // error is drift · t²/2 with t in seconds, i.e. d·tn²/(2·10¹⁸)
        // nanoseconds. tn ≤ ~10¹² and |d| ≤ ~10⁹ keep this well inside
        // i128.
        err += c.drift_ppb_per_s as i128 * tn * tn / 2_000_000_000_000_000_000;
        for g in &self.glitches {
            if g.at > t {
                break;
            }
            if g.node == node {
                err += g.delta_ns as i128;
            }
        }
        err.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// Whether this scenario carries per-node clock faults (the
    /// fault-free fast path skips the error arithmetic entirely).
    pub fn has_clock_faults(&self) -> bool {
        !self.clocks.is_empty()
    }

    /// Whether this compiled stream perturbs the run at all: churn,
    /// bursty links, a battery model, clock faults, or scripted
    /// glitches. A spec that compiles to nothing (e.g. `clock_drift(0)`)
    /// answers `false` — such a scenario must behave bit-identically to
    /// having none attached. Traffic phases are excluded: they reshape
    /// the workload, they don't fault it.
    pub fn can_fault(&self) -> bool {
        self.link.is_some()
            || self.battery.is_some()
            || !self.events.is_empty()
            || !self.clocks.is_empty()
            || !self.glitches.is_empty()
    }

    /// Validates this compiled stream against a run's shape — used when
    /// replaying a recorded (possibly hand-edited) trace, which skips
    /// the `compile()` checks the `Spec` path gets for free.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when the trace was recorded for a
    /// different node count, targets an out-of-range node or the
    /// replay run's root, carries unsorted/out-of-range traffic
    /// phases, or has nonsensical link/battery parameters.
    pub fn validate_for(&self, nodes: u32, root: u32) {
        assert!(
            self.nodes == nodes,
            "scenario trace `{}` was recorded for {} nodes, replayed on {}",
            self.name,
            self.nodes,
            nodes
        );
        if let Some(ge) = &self.link {
            ge.validate();
        }
        if let Some(b) = &self.battery {
            assert!(
                b.capacity_j > 0.0 && b.capacity_j.is_finite(),
                "trace battery capacity must be positive"
            );
            assert!(
                !b.check_period.is_zero(),
                "trace battery check period is zero"
            );
        }
        let mut last = SimTime::ZERO;
        for p in &self.traffic {
            assert!(
                (0.0..=1.0).contains(&p.rate_scale),
                "trace traffic scale out of [0, 1]: {}",
                p.rate_scale
            );
            assert!(p.from >= last, "trace traffic phases must be sorted");
            last = p.from;
        }
        let mut last = (SimTime::ZERO, 0u32, false);
        for e in &self.events {
            assert!(e.node < nodes, "trace churn of unknown node {}", e.node);
            assert!(e.node != root, "trace churn must not target the root");
            let key = (e.at, e.node, e.up);
            assert!(key >= last, "trace churn events must be sorted");
            last = key;
        }
        assert!(
            self.clocks.is_empty() || self.clocks.len() == nodes as usize,
            "trace has {} clock lines for {} nodes",
            self.clocks.len(),
            nodes
        );
        let mut last = (SimTime::ZERO, 0u32);
        for g in &self.glitches {
            assert!(g.node < nodes, "trace glitch of unknown node {}", g.node);
            assert!(
                !self.clocks.is_empty(),
                "trace glitch without clock lines (node {})",
                g.node
            );
            let key = (g.at, g.node);
            assert!(key >= last, "trace glitches must be sorted");
            last = key;
        }
    }

    /// Serialises to the plain-text trace format (see [`crate::trace`]).
    pub fn to_trace(&self) -> String {
        crate::trace::to_trace(self)
    }

    /// Parses a recorded trace.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_trace(trace: &str) -> Result<CompiledScenario, String> {
        crate::trace::from_trace(trace)
    }
}

/// Compiles `spec` for a run of `nodes` nodes rooted at `root` lasting
/// `duration` under master seed `seed`.
pub fn compile(
    spec: &ScenarioSpec,
    nodes: u32,
    root: u32,
    duration: SimDuration,
    seed: u64,
) -> CompiledScenario {
    spec.validate();
    assert!(nodes > 0 && root < nodes, "root {root} outside 0..{nodes}");
    let end = SimTime::ZERO + duration;
    let mut events = Vec::new();
    match &spec.churn {
        None => {}
        Some(ChurnSpec::Scripted(steps)) => {
            for s in steps {
                assert!(s.node < nodes, "churn of unknown node {}", s.node);
                assert!(s.node != root, "churn must not target the root");
                if s.at <= end {
                    events.push(ScenarioEvent {
                        at: s.at,
                        node: s.node,
                        up: s.up,
                    });
                }
            }
        }
        Some(ChurnSpec::Periodic {
            first_at,
            period,
            down_for,
        }) => {
            // Round-robin victims in id order, skipping the root.
            let mut intervals = Vec::new();
            let mut victim = 0u32;
            let mut at = *first_at;
            while at <= end {
                if victim == root {
                    victim = (victim + 1) % nodes;
                }
                intervals.push((victim, at, at + *down_for));
                victim = (victim + 1) % nodes;
                at += *period;
            }
            push_merged(&mut events, intervals, end);
        }
        Some(ChurnSpec::Random {
            mean_uptime,
            mean_downtime,
        }) => {
            let mut rng = SimRng::seed_from_u64(seed).derive(CHURN_STREAM);
            let mut intervals = Vec::new();
            let mut at = SimTime::ZERO;
            loop {
                at += SimDuration::from_secs_f64(rng.exp(mean_uptime.as_secs_f64()));
                if at > end {
                    break;
                }
                // Draw uniformly over the `nodes - 1` non-root ids.
                // (Mapping a root draw to `root + 1` would give that
                // node twice the victim probability.)
                let draw = rng.below(nodes as u64 - 1) as u32;
                let victim = if draw >= root { draw + 1 } else { draw };
                let back = at + SimDuration::from_secs_f64(rng.exp(mean_downtime.as_secs_f64()));
                intervals.push((victim, at, back));
            }
            push_merged(&mut events, intervals, end);
        }
    }
    events.sort_unstable_by_key(|e| (e.at, e.node, e.up));
    let (clocks, glitches) = match &spec.clock {
        None => (Vec::new(), Vec::new()),
        Some(c) => {
            let mut rng = SimRng::seed_from_u64(seed).derive(CLOCK_STREAM);
            let skew_bound = (c.skew_ppm * 1000.0).round() as u64;
            let drift_bound = (c.drift_ppm_per_s * 1000.0).round() as u64;
            let mut draw = |bound: u64| {
                if bound == 0 {
                    0
                } else {
                    rng.below(2 * bound + 1) as i64 - bound as i64
                }
            };
            let clocks = (0..nodes)
                .map(|_| NodeClock {
                    skew_ppb: draw(skew_bound),
                    drift_ppb_per_s: draw(drift_bound),
                })
                .collect();
            let mut glitches = c.glitches.clone();
            for g in &glitches {
                assert!(g.node < nodes, "clock glitch of unknown node {}", g.node);
            }
            glitches.retain(|g| g.at <= end);
            // A zero-magnitude spec (the control arm) compiles to no
            // clock table at all, so it takes the fault-free fast path.
            let mut clocks: Vec<NodeClock> = clocks;
            if glitches.is_empty() && clocks.iter().all(|k| k == &NodeClock::default()) {
                clocks.clear();
            }
            (clocks, glitches)
        }
    };
    CompiledScenario {
        name: spec.name.clone(),
        nodes,
        link: spec.link,
        battery: spec.battery,
        events,
        traffic: spec.traffic.clone(),
        clocks,
        glitches,
    }
}

/// Turns per-victim down-intervals into down/up event pairs, merging
/// intervals of the same node that overlap or touch: a victim hit again
/// while still down stays down until the *latest* recovery, instead of
/// the earlier recovery silently truncating the later outage.
fn push_merged(
    events: &mut Vec<ScenarioEvent>,
    mut intervals: Vec<(u32, SimTime, SimTime)>,
    end: SimTime,
) {
    intervals.sort_unstable_by_key(|&(node, down, up)| (node, down, up));
    let mut i = 0;
    while i < intervals.len() {
        let (node, down, mut up) = intervals[i];
        i += 1;
        while i < intervals.len() && intervals[i].0 == node && intervals[i].1 <= up {
            up = up.max(intervals[i].2);
            i += 1;
        }
        events.push(ScenarioEvent {
            at: down,
            node,
            up: false,
        });
        if up <= end {
            events.push(ScenarioEvent {
                at: up,
                node,
                up: true,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn compile_is_deterministic() {
        let mut spec = ScenarioSpec::named("r");
        spec.churn = Some(ChurnSpec::Random {
            mean_uptime: SimDuration::from_secs(10),
            mean_downtime: SimDuration::from_secs(3),
        });
        let a = spec.compile(20, 4, SimDuration::from_secs(100), 9);
        let b = spec.compile(20, 4, SimDuration::from_secs(100), 9);
        assert_eq!(a, b);
        assert!(!a.events.is_empty(), "100 s at MTBF 10 s must churn");
        let c = spec.compile(20, 4, SimDuration::from_secs(100), 10);
        assert_ne!(a.events, c.events, "different seed, different stream");
    }

    #[test]
    fn periodic_churn_pairs_down_with_up_and_skips_root() {
        let mut spec = ScenarioSpec::named("p");
        spec.churn = Some(ChurnSpec::Periodic {
            first_at: secs(10),
            period: SimDuration::from_secs(10),
            down_for: SimDuration::from_secs(4),
        });
        let c = spec.compile(3, 0, SimDuration::from_secs(40), 1);
        // Victims rotate 1, 2, 1, 2 (root 0 skipped); each down has an
        // up 4 s later.
        let downs: Vec<_> = c.events.iter().filter(|e| !e.up).collect();
        assert_eq!(downs.len(), 4);
        assert!(downs.iter().all(|e| e.node != 0));
        for d in downs {
            let back = d.at + SimDuration::from_secs(4);
            if back <= secs(40) {
                assert!(c
                    .events
                    .iter()
                    .any(|e| e.up && e.node == d.node && e.at == back));
            }
        }
        // Sorted stream.
        let mut sorted = c.events.clone();
        sorted.sort_unstable_by_key(|e| (e.at, e.node, e.up));
        assert_eq!(c.events, sorted);
    }

    #[test]
    fn random_churn_never_hits_root() {
        let mut spec = ScenarioSpec::named("r");
        spec.churn = Some(ChurnSpec::Random {
            mean_uptime: SimDuration::from_secs(2),
            mean_downtime: SimDuration::from_secs(1),
        });
        let c = spec.compile(5, 3, SimDuration::from_secs(400), 77);
        assert!(c.events.iter().all(|e| e.node != 3));
    }

    /// PR 3 review leftover: mapping a root draw to `root + 1` gave
    /// that node double the victim probability. Victims must now be
    /// uniform over the non-root ids.
    #[test]
    fn random_churn_victims_are_uniform() {
        let mut spec = ScenarioSpec::named("r");
        spec.churn = Some(ChurnSpec::Random {
            mean_uptime: SimDuration::from_secs(1),
            mean_downtime: SimDuration::from_millis(100),
        });
        let root = 2u32;
        let c = spec.compile(5, root, SimDuration::from_secs(4000), 11);
        let mut hits = [0usize; 5];
        for e in c.events.iter().filter(|e| !e.up) {
            hits[e.node as usize] += 1;
        }
        assert_eq!(hits[root as usize], 0, "root is never a victim");
        let non_root: Vec<usize> = (0..5).filter(|&n| n != root as usize).collect();
        let total: usize = non_root.iter().map(|&n| hits[n]).sum();
        assert!(total > 2000, "enough samples for the distribution check");
        let expected = total as f64 / non_root.len() as f64;
        for &n in &non_root {
            let ratio = hits[n] as f64 / expected;
            // The old wrap bias put node (root+1) at ratio ≈ 2.0.
            assert!(
                (0.8..1.2).contains(&ratio),
                "victim {n} hit {} times, {ratio:.2}x the uniform share",
                hits[n]
            );
        }
    }

    /// PR 3 review leftover: when an outage outlives the churn period,
    /// a victim's next down-interval used to get truncated by the
    /// earlier interval's recovery. Overlapping intervals now merge.
    #[test]
    fn periodic_churn_overlapping_outages_merge() {
        let mut spec = ScenarioSpec::named("p");
        spec.churn = Some(ChurnSpec::Periodic {
            first_at: secs(10),
            period: SimDuration::from_secs(10),
            down_for: SimDuration::from_secs(15),
        });
        // Two nodes, root 0: every interval hits node 1, and each
        // outage [at, at+15] overlaps the next (period 10): one merged
        // outage from 10 s to past the end of the run.
        let c = spec.compile(2, 0, SimDuration::from_secs(40), 1);
        assert_eq!(
            c.events,
            vec![ScenarioEvent {
                at: secs(10),
                node: 1,
                up: false,
            }],
            "one down, no mid-outage revival"
        );
        // Disjoint intervals keep their individual pairs.
        spec.churn = Some(ChurnSpec::Periodic {
            first_at: secs(10),
            period: SimDuration::from_secs(10),
            down_for: SimDuration::from_secs(4),
        });
        let c = spec.compile(2, 0, SimDuration::from_secs(35), 1);
        assert_eq!(c.events.iter().filter(|e| !e.up).count(), 3);
        assert_eq!(c.events.iter().filter(|e| e.up).count(), 3);
    }

    #[test]
    fn clock_compilation_is_deterministic_and_bounded() {
        use crate::spec::ClockSpec;
        let mut spec = ScenarioSpec::named("c");
        spec.clock = Some(ClockSpec::uniform(50.0, 2.0));
        let a = spec.compile(30, 0, SimDuration::from_secs(60), 7);
        let b = spec.compile(30, 0, SimDuration::from_secs(60), 7);
        assert_eq!(a, b);
        assert_eq!(a.clocks.len(), 30);
        assert!(a.clocks.iter().all(|c| c.skew_ppb.abs() <= 50_000));
        assert!(a.clocks.iter().all(|c| c.drift_ppb_per_s.abs() <= 2_000));
        assert!(
            a.clocks.iter().any(|c| c.skew_ppb != 0),
            "a 50 ppm bound over 30 nodes draws nonzero skews"
        );
        let c = spec.compile(30, 0, SimDuration::from_secs(60), 8);
        assert_ne!(a.clocks, c.clocks, "different seed, different clocks");
    }

    #[test]
    fn clock_error_accumulates_and_steps() {
        use crate::spec::{ClockSpec, GlitchStep};
        let mut spec = ScenarioSpec::named("c");
        spec.clock = Some(ClockSpec {
            skew_ppm: 0.0,
            drift_ppm_per_s: 0.0,
            glitches: vec![GlitchStep {
                at: secs(10),
                node: 1,
                delta_ns: -500_000,
            }],
        });
        let mut c = spec.compile(3, 0, SimDuration::from_secs(30), 1);
        // Hand-set clocks to make the arithmetic checkable.
        c.clocks[1] = NodeClock {
            skew_ppb: 20_000, // 20 ppm fast
            drift_ppb_per_s: 0,
        };
        c.clocks[2] = NodeClock {
            skew_ppb: 0,
            drift_ppb_per_s: 1_000, // +1 ppm/s rate growth
        };
        // 20 ppm over 10 s = 200 µs, minus the scripted 500 µs step.
        assert_eq!(c.clock_err_ns(1, secs(10)), 200_000 - 500_000);
        assert_eq!(
            c.clock_err_ns(1, secs(10) - SimDuration::from_nanos(1)),
            199_999
        );
        // Quadratic drift: 1 ppm/s for 20 s → 10⁻⁶·20²/2 s = 200 µs.
        assert_eq!(c.clock_err_ns(2, secs(20)), 200_000);
        // Perfect clock elsewhere; disabled spec reports zero.
        assert_eq!(c.clock_err_ns(0, secs(20)), 0);
        let steady = ScenarioSpec::named("s").compile(3, 0, SimDuration::from_secs(30), 1);
        assert_eq!(steady.clock_err_ns(1, secs(20)), 0);
    }

    #[test]
    fn traffic_scale_lookup() {
        let mut spec = ScenarioSpec::named("t");
        spec.traffic = vec![
            TrafficPhase {
                from: secs(10),
                rate_scale: 0.5,
            },
            TrafficPhase {
                from: secs(20),
                rate_scale: 1.0,
            },
        ];
        let c = spec.compile(4, 0, SimDuration::from_secs(30), 1);
        assert_eq!(c.traffic_scale_at(secs(0)), 1.0);
        assert_eq!(c.traffic_scale_at(secs(10)), 0.5);
        assert_eq!(c.traffic_scale_at(secs(15)), 0.5);
        assert_eq!(c.traffic_scale_at(secs(25)), 1.0);
    }

    #[test]
    fn round_decimation_matches_scale() {
        let mut spec = ScenarioSpec::named("t");
        spec.traffic = vec![TrafficPhase {
            from: SimTime::ZERO,
            rate_scale: 0.25,
        }];
        let c = spec.compile(4, 0, SimDuration::from_secs(30), 1);
        let active = (0..100u64).filter(|&k| c.round_active(secs(1), k)).count();
        assert_eq!(active, 25, "quarter rate keeps a quarter of rounds");
        // Scale 1 (no phases) keeps everything.
        let steady = ScenarioSpec::named("s").compile(4, 0, SimDuration::from_secs(30), 1);
        assert!((0..100u64).all(|k| steady.round_active(secs(1), k)));
        // Scale 0 silences everything.
        let mut quiet = ScenarioSpec::named("q");
        quiet.traffic = vec![TrafficPhase {
            from: SimTime::ZERO,
            rate_scale: 0.0,
        }];
        let qc = quiet.compile(4, 0, SimDuration::from_secs(30), 1);
        assert!((0..100u64).all(|k| !qc.round_active(secs(1), k)));
    }

    #[test]
    fn validate_for_accepts_matching_shape() {
        let mut spec = ScenarioSpec::named("p");
        spec.churn = Some(ChurnSpec::Periodic {
            first_at: secs(5),
            period: SimDuration::from_secs(5),
            down_for: SimDuration::from_secs(2),
        });
        let c = spec.compile(8, 3, SimDuration::from_secs(30), 1);
        c.validate_for(8, 3);
    }

    #[test]
    #[should_panic(expected = "recorded for 8 nodes, replayed on 40")]
    fn validate_for_rejects_node_count_mismatch() {
        let c = ScenarioSpec::named("s").compile(8, 0, SimDuration::from_secs(10), 1);
        c.validate_for(40, 0);
    }

    #[test]
    #[should_panic(expected = "trace churn must not target the root")]
    fn validate_for_rejects_churn_of_replay_root() {
        let mut spec = ScenarioSpec::named("p");
        spec.churn = Some(ChurnSpec::Scripted(vec![crate::spec::ChurnStep {
            at: secs(1),
            node: 4,
            up: false,
        }]));
        let c = spec.compile(8, 0, SimDuration::from_secs(10), 1);
        // Fine for the recorded root, fatal for a replay rooted at 4.
        c.validate_for(8, 0);
        c.validate_for(8, 4);
    }

    #[test]
    #[should_panic(expected = "must not target the root")]
    fn scripted_churn_of_root_rejected() {
        let mut spec = ScenarioSpec::named("bad");
        spec.churn = Some(ChurnSpec::Scripted(vec![crate::spec::ChurnStep {
            at: secs(1),
            node: 2,
            up: false,
        }]));
        spec.compile(5, 2, SimDuration::from_secs(10), 1);
    }
}
