//! Compilation: from declarative spec to an explicit event stream.
//!
//! A [`CompiledScenario`] is plain data — churn events sorted by
//! `(time, node, direction)`, traffic phases, and the link/battery
//! parameter blocks. It is what the simulator consumes, what
//! [`to_trace`](CompiledScenario::to_trace) records, and what
//! [`from_trace`](CompiledScenario::from_trace) replays. Compilation is
//! a pure function of `(spec, nodes, root, duration, seed)`: randomized
//! churn draws from a derived RNG stream, never from ambient state.

use essat_sim::rng::SimRng;
use essat_sim::time::{SimDuration, SimTime};

use crate::gilbert::GilbertElliottParams;
use crate::spec::{BatterySpec, ChurnSpec, ScenarioSpec, TrafficPhase};

/// RNG stream label for churn compilation (disjoint from the
/// simulator's streams, which use small labels).
const CHURN_STREAM: u64 = 0x5CE7_A210;

/// One churn event in the compiled stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioEvent {
    /// When it fires.
    pub at: SimTime,
    /// Target node index.
    pub node: u32,
    /// `true` = recovery, `false` = failure.
    pub up: bool,
}

/// The fully compiled scenario: what a run executes and a trace stores.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledScenario {
    /// Scenario name (carried into the trace header).
    pub name: String,
    /// Node count the stream was compiled for.
    pub nodes: u32,
    /// Per-link bursty loss, if enabled.
    pub link: Option<GilbertElliottParams>,
    /// Battery model, if enabled.
    pub battery: Option<BatterySpec>,
    /// Churn events sorted by `(time, node, up)`.
    pub events: Vec<ScenarioEvent>,
    /// Traffic phases sorted by start time.
    pub traffic: Vec<TrafficPhase>,
}

impl CompiledScenario {
    /// The workload rate scale in effect at `t` (1.0 before the first
    /// phase or when no phases are configured).
    pub fn traffic_scale_at(&self, t: SimTime) -> f64 {
        let mut scale = 1.0;
        for p in &self.traffic {
            if p.from <= t {
                scale = p.rate_scale;
            } else {
                break;
            }
        }
        scale
    }

    /// Whether round `k` of a query is active under the phase schedule.
    ///
    /// Decimation is Bresenham-style against the scale in effect at the
    /// round's start: round `k` runs iff `⌊(k+1)·s⌋ > ⌊k·s⌋`. This is a
    /// pure function of `(schedule, round_start, k)`, so every node —
    /// source, relay, root — agrees on the active set without any
    /// signalling.
    pub fn round_active(&self, round_start: SimTime, k: u64) -> bool {
        if self.traffic.is_empty() {
            return true;
        }
        let s = self.traffic_scale_at(round_start);
        if s >= 1.0 {
            return true;
        }
        if s <= 0.0 {
            return false;
        }
        ((k + 1) as f64 * s).floor() > (k as f64 * s).floor()
    }

    /// Validates this compiled stream against a run's shape — used when
    /// replaying a recorded (possibly hand-edited) trace, which skips
    /// the `compile()` checks the `Spec` path gets for free.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when the trace was recorded for a
    /// different node count, targets an out-of-range node or the
    /// replay run's root, carries unsorted/out-of-range traffic
    /// phases, or has nonsensical link/battery parameters.
    pub fn validate_for(&self, nodes: u32, root: u32) {
        assert!(
            self.nodes == nodes,
            "scenario trace `{}` was recorded for {} nodes, replayed on {}",
            self.name,
            self.nodes,
            nodes
        );
        if let Some(ge) = &self.link {
            ge.validate();
        }
        if let Some(b) = &self.battery {
            assert!(
                b.capacity_j > 0.0 && b.capacity_j.is_finite(),
                "trace battery capacity must be positive"
            );
            assert!(
                !b.check_period.is_zero(),
                "trace battery check period is zero"
            );
        }
        let mut last = SimTime::ZERO;
        for p in &self.traffic {
            assert!(
                (0.0..=1.0).contains(&p.rate_scale),
                "trace traffic scale out of [0, 1]: {}",
                p.rate_scale
            );
            assert!(p.from >= last, "trace traffic phases must be sorted");
            last = p.from;
        }
        let mut last = (SimTime::ZERO, 0u32, false);
        for e in &self.events {
            assert!(e.node < nodes, "trace churn of unknown node {}", e.node);
            assert!(e.node != root, "trace churn must not target the root");
            let key = (e.at, e.node, e.up);
            assert!(key >= last, "trace churn events must be sorted");
            last = key;
        }
    }

    /// Serialises to the plain-text trace format (see [`crate::trace`]).
    pub fn to_trace(&self) -> String {
        crate::trace::to_trace(self)
    }

    /// Parses a recorded trace.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_trace(trace: &str) -> Result<CompiledScenario, String> {
        crate::trace::from_trace(trace)
    }
}

/// Compiles `spec` for a run of `nodes` nodes rooted at `root` lasting
/// `duration` under master seed `seed`.
pub fn compile(
    spec: &ScenarioSpec,
    nodes: u32,
    root: u32,
    duration: SimDuration,
    seed: u64,
) -> CompiledScenario {
    spec.validate();
    assert!(nodes > 0 && root < nodes, "root {root} outside 0..{nodes}");
    let end = SimTime::ZERO + duration;
    let mut events = Vec::new();
    match &spec.churn {
        None => {}
        Some(ChurnSpec::Scripted(steps)) => {
            for s in steps {
                assert!(s.node < nodes, "churn of unknown node {}", s.node);
                assert!(s.node != root, "churn must not target the root");
                if s.at <= end {
                    events.push(ScenarioEvent {
                        at: s.at,
                        node: s.node,
                        up: s.up,
                    });
                }
            }
        }
        Some(ChurnSpec::Periodic {
            first_at,
            period,
            down_for,
        }) => {
            // Round-robin victims in id order, skipping the root.
            let mut victim = 0u32;
            let mut at = *first_at;
            while at <= end {
                if victim == root {
                    victim = (victim + 1) % nodes;
                }
                events.push(ScenarioEvent {
                    at,
                    node: victim,
                    up: false,
                });
                let back = at + *down_for;
                if back <= end {
                    events.push(ScenarioEvent {
                        at: back,
                        node: victim,
                        up: true,
                    });
                }
                victim = (victim + 1) % nodes;
                at += *period;
            }
        }
        Some(ChurnSpec::Random {
            mean_uptime,
            mean_downtime,
        }) => {
            let mut rng = SimRng::seed_from_u64(seed).derive(CHURN_STREAM);
            let mut at = SimTime::ZERO;
            loop {
                at += SimDuration::from_secs_f64(rng.exp(mean_uptime.as_secs_f64()));
                if at > end {
                    break;
                }
                let mut victim = rng.below(nodes as u64) as u32;
                if victim == root {
                    victim = (victim + 1) % nodes;
                }
                events.push(ScenarioEvent {
                    at,
                    node: victim,
                    up: false,
                });
                let back = at + SimDuration::from_secs_f64(rng.exp(mean_downtime.as_secs_f64()));
                if back <= end {
                    events.push(ScenarioEvent {
                        at: back,
                        node: victim,
                        up: true,
                    });
                }
            }
        }
    }
    events.sort_unstable_by_key(|e| (e.at, e.node, e.up));
    CompiledScenario {
        name: spec.name.clone(),
        nodes,
        link: spec.link,
        battery: spec.battery,
        events,
        traffic: spec.traffic.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn compile_is_deterministic() {
        let mut spec = ScenarioSpec::named("r");
        spec.churn = Some(ChurnSpec::Random {
            mean_uptime: SimDuration::from_secs(10),
            mean_downtime: SimDuration::from_secs(3),
        });
        let a = spec.compile(20, 4, SimDuration::from_secs(100), 9);
        let b = spec.compile(20, 4, SimDuration::from_secs(100), 9);
        assert_eq!(a, b);
        assert!(!a.events.is_empty(), "100 s at MTBF 10 s must churn");
        let c = spec.compile(20, 4, SimDuration::from_secs(100), 10);
        assert_ne!(a.events, c.events, "different seed, different stream");
    }

    #[test]
    fn periodic_churn_pairs_down_with_up_and_skips_root() {
        let mut spec = ScenarioSpec::named("p");
        spec.churn = Some(ChurnSpec::Periodic {
            first_at: secs(10),
            period: SimDuration::from_secs(10),
            down_for: SimDuration::from_secs(4),
        });
        let c = spec.compile(3, 0, SimDuration::from_secs(40), 1);
        // Victims rotate 1, 2, 1, 2 (root 0 skipped); each down has an
        // up 4 s later.
        let downs: Vec<_> = c.events.iter().filter(|e| !e.up).collect();
        assert_eq!(downs.len(), 4);
        assert!(downs.iter().all(|e| e.node != 0));
        for d in downs {
            let back = d.at + SimDuration::from_secs(4);
            if back <= secs(40) {
                assert!(c
                    .events
                    .iter()
                    .any(|e| e.up && e.node == d.node && e.at == back));
            }
        }
        // Sorted stream.
        let mut sorted = c.events.clone();
        sorted.sort_unstable_by_key(|e| (e.at, e.node, e.up));
        assert_eq!(c.events, sorted);
    }

    #[test]
    fn random_churn_never_hits_root() {
        let mut spec = ScenarioSpec::named("r");
        spec.churn = Some(ChurnSpec::Random {
            mean_uptime: SimDuration::from_secs(2),
            mean_downtime: SimDuration::from_secs(1),
        });
        let c = spec.compile(5, 3, SimDuration::from_secs(400), 77);
        assert!(c.events.iter().all(|e| e.node != 3));
    }

    #[test]
    fn traffic_scale_lookup() {
        let mut spec = ScenarioSpec::named("t");
        spec.traffic = vec![
            TrafficPhase {
                from: secs(10),
                rate_scale: 0.5,
            },
            TrafficPhase {
                from: secs(20),
                rate_scale: 1.0,
            },
        ];
        let c = spec.compile(4, 0, SimDuration::from_secs(30), 1);
        assert_eq!(c.traffic_scale_at(secs(0)), 1.0);
        assert_eq!(c.traffic_scale_at(secs(10)), 0.5);
        assert_eq!(c.traffic_scale_at(secs(15)), 0.5);
        assert_eq!(c.traffic_scale_at(secs(25)), 1.0);
    }

    #[test]
    fn round_decimation_matches_scale() {
        let mut spec = ScenarioSpec::named("t");
        spec.traffic = vec![TrafficPhase {
            from: SimTime::ZERO,
            rate_scale: 0.25,
        }];
        let c = spec.compile(4, 0, SimDuration::from_secs(30), 1);
        let active = (0..100u64).filter(|&k| c.round_active(secs(1), k)).count();
        assert_eq!(active, 25, "quarter rate keeps a quarter of rounds");
        // Scale 1 (no phases) keeps everything.
        let steady = ScenarioSpec::named("s").compile(4, 0, SimDuration::from_secs(30), 1);
        assert!((0..100u64).all(|k| steady.round_active(secs(1), k)));
        // Scale 0 silences everything.
        let mut quiet = ScenarioSpec::named("q");
        quiet.traffic = vec![TrafficPhase {
            from: SimTime::ZERO,
            rate_scale: 0.0,
        }];
        let qc = quiet.compile(4, 0, SimDuration::from_secs(30), 1);
        assert!((0..100u64).all(|k| !qc.round_active(secs(1), k)));
    }

    #[test]
    fn validate_for_accepts_matching_shape() {
        let mut spec = ScenarioSpec::named("p");
        spec.churn = Some(ChurnSpec::Periodic {
            first_at: secs(5),
            period: SimDuration::from_secs(5),
            down_for: SimDuration::from_secs(2),
        });
        let c = spec.compile(8, 3, SimDuration::from_secs(30), 1);
        c.validate_for(8, 3);
    }

    #[test]
    #[should_panic(expected = "recorded for 8 nodes, replayed on 40")]
    fn validate_for_rejects_node_count_mismatch() {
        let c = ScenarioSpec::named("s").compile(8, 0, SimDuration::from_secs(10), 1);
        c.validate_for(40, 0);
    }

    #[test]
    #[should_panic(expected = "trace churn must not target the root")]
    fn validate_for_rejects_churn_of_replay_root() {
        let mut spec = ScenarioSpec::named("p");
        spec.churn = Some(ChurnSpec::Scripted(vec![crate::spec::ChurnStep {
            at: secs(1),
            node: 4,
            up: false,
        }]));
        let c = spec.compile(8, 0, SimDuration::from_secs(10), 1);
        // Fine for the recorded root, fatal for a replay rooted at 4.
        c.validate_for(8, 0);
        c.validate_for(8, 4);
    }

    #[test]
    #[should_panic(expected = "must not target the root")]
    fn scripted_churn_of_root_rejected() {
        let mut spec = ScenarioSpec::named("bad");
        spec.churn = Some(ChurnSpec::Scripted(vec![crate::spec::ChurnStep {
            at: secs(1),
            node: 2,
            up: false,
        }]));
        spec.compile(5, 2, SimDuration::from_secs(10), 1);
    }
}
