//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] describes *what* the environment does over a run;
//! [`ScenarioSpec::compile`] turns it into the explicit, seeded event
//! stream ([`CompiledScenario`]) the
//! simulator consumes and the trace codec records.

use essat_sim::time::{SimDuration, SimTime};

use crate::compile::CompiledScenario;
use crate::gilbert::GilbertElliottParams;

/// Per-node battery model.
///
/// Every node starts with `capacity_j` joules; the simulator drains it
/// with the radio's exact energy accounting and kills the node when the
/// charge is gone. Depletion is detected on a periodic sweep, so death
/// times are quantised to `check_period`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatterySpec {
    /// Initial charge in joules (MICA2 draws 45 mW while active).
    pub capacity_j: f64,
    /// How often depletion is checked.
    pub check_period: SimDuration,
}

/// One scripted churn step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnStep {
    /// When it happens.
    pub at: SimTime,
    /// Target node index.
    pub node: u32,
    /// `true` = the node recovers, `false` = it fails.
    pub up: bool,
}

/// Node churn: failures *and* recoveries over the run.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnSpec {
    /// An explicit list of steps (generalises the old scripted
    /// `node_failures`, which could only kill).
    Scripted(Vec<ChurnStep>),
    /// Every `period`, the next non-root node in round-robin id order
    /// goes down and recovers `down_for` later.
    Periodic {
        /// First failure time.
        first_at: SimTime,
        /// Spacing between failures.
        period: SimDuration,
        /// Outage length of each victim.
        down_for: SimDuration,
    },
    /// Victims drawn at random (seeded): failure inter-arrival and
    /// outage lengths are exponential with the given means.
    Random {
        /// Mean time between failures (network-wide).
        mean_uptime: SimDuration,
        /// Mean outage length.
        mean_downtime: SimDuration,
    },
}

/// One scripted clock glitch: at `at`, node `node`'s local clock jumps
/// by `delta_ns` (positive = the clock leaps ahead, negative = it falls
/// behind). Models the step desyncs real nodes suffer on reboots,
/// brown-outs, and botched resynchronisations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlitchStep {
    /// When the step happens (wall time).
    pub at: SimTime,
    /// Target node index.
    pub node: u32,
    /// Signed clock step in nanoseconds.
    pub delta_ns: i64,
}

/// Per-node clock faults: every node gets a constant frequency skew and
/// a linear drift-rate, both drawn uniformly in `±bound` from a stream
/// derived from the master seed (like the Gilbert–Elliott chains), plus
/// optional scripted desync [`GlitchStep`]s.
///
/// A node whose compiled skew is `s` ppb and drift-rate `d` ppb/s has a
/// local-clock error at wall time `t` of
/// `s·t + d·t²/2 + Σ glitches ≤ t` (all integer arithmetic, so traces
/// round-trip byte-identically). The simulator applies the error where
/// policies convert local schedule times into timer deadlines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClockSpec {
    /// Per-node skew bound in parts-per-million: each node's constant
    /// frequency error is drawn uniformly in `[-skew_ppm, +skew_ppm]`.
    pub skew_ppm: f64,
    /// Per-node drift-rate bound in ppm per second: each node's rate
    /// error *grows* linearly, drawn uniformly in the same way, so the
    /// accumulated error is quadratic in elapsed time.
    pub drift_ppm_per_s: f64,
    /// Scripted desync steps, sorted by `(at, node)`.
    pub glitches: Vec<GlitchStep>,
}

impl ClockSpec {
    /// A pure skew/drift spec (no scripted glitches).
    pub fn uniform(skew_ppm: f64, drift_ppm_per_s: f64) -> Self {
        ClockSpec {
            skew_ppm,
            drift_ppm_per_s,
            glitches: Vec::new(),
        }
    }
}

/// One traffic phase: from `from` onward the workload runs at
/// `rate_scale` times its configured base rate, until the next phase.
///
/// Scales are in `[0, 1]`: bursts are expressed by configuring the
/// workload at the burst rate and scaling the quiet phases down
/// (rounds are decimated deterministically, so every node agrees on
/// which rounds are active without extra signalling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficPhase {
    /// Phase start.
    pub from: SimTime,
    /// Rate multiplier in `[0, 1]` (1 = full rate, 0 = silent).
    pub rate_scale: f64,
}

/// A declarative scenario: any combination of link burstiness, battery
/// depletion, node churn, and traffic phases. Empty parts leave the
/// corresponding aspect of the environment static.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSpec {
    /// Human-readable name (preset name or free-form).
    pub name: String,
    /// Per-link Gilbert–Elliott bursty loss.
    pub link: Option<GilbertElliottParams>,
    /// Battery model.
    pub battery: Option<BatterySpec>,
    /// Node churn schedule.
    pub churn: Option<ChurnSpec>,
    /// Per-node clock faults (skew, drift, scripted glitches).
    pub clock: Option<ClockSpec>,
    /// Traffic phases, sorted by start time (scale 1.0 before the
    /// first phase).
    pub traffic: Vec<TrafficPhase>,
}

impl ScenarioSpec {
    /// A named, empty scenario (static environment).
    pub fn named(name: &str) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            ..ScenarioSpec::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters (probabilities outside `[0,1]`,
    /// zero periods, unsorted phases).
    pub fn validate(&self) {
        if let Some(ge) = &self.link {
            ge.validate();
        }
        if let Some(b) = &self.battery {
            assert!(
                b.capacity_j > 0.0 && b.capacity_j.is_finite(),
                "battery capacity must be positive"
            );
            assert!(!b.check_period.is_zero(), "battery check period is zero");
        }
        match &self.churn {
            Some(ChurnSpec::Periodic {
                period, down_for, ..
            }) => {
                assert!(!period.is_zero(), "churn period is zero");
                assert!(!down_for.is_zero(), "churn outage is zero");
            }
            Some(ChurnSpec::Random {
                mean_uptime,
                mean_downtime,
            }) => {
                assert!(!mean_uptime.is_zero(), "churn mean uptime is zero");
                assert!(!mean_downtime.is_zero(), "churn mean downtime is zero");
            }
            Some(ChurnSpec::Scripted(_)) | None => {}
        }
        if let Some(c) = &self.clock {
            assert!(
                c.skew_ppm >= 0.0 && c.skew_ppm.is_finite(),
                "clock skew bound must be a finite non-negative ppm"
            );
            assert!(
                c.drift_ppm_per_s >= 0.0 && c.drift_ppm_per_s.is_finite(),
                "clock drift bound must be a finite non-negative ppm/s"
            );
            let mut last = (SimTime::ZERO, 0u32);
            for g in &c.glitches {
                assert!(
                    (g.at, g.node) >= last,
                    "clock glitches must be sorted by (at, node)"
                );
                last = (g.at, g.node);
            }
        }
        let mut last = SimTime::ZERO;
        for p in &self.traffic {
            assert!(
                (0.0..=1.0).contains(&p.rate_scale),
                "traffic rate scale out of [0, 1]: {}",
                p.rate_scale
            );
            assert!(p.from >= last, "traffic phases must be sorted by start");
            last = p.from;
        }
    }

    /// Compiles the spec into the deterministic event stream for a run
    /// of `nodes` nodes rooted at `root`, lasting `duration`, under
    /// master seed `seed`. Randomized churn draws from a stream derived
    /// from `seed`, so compilation is a pure function of its arguments.
    pub fn compile(
        &self,
        nodes: u32,
        root: u32,
        duration: SimDuration,
        seed: u64,
    ) -> CompiledScenario {
        crate::compile::compile(self, nodes, root, duration, seed)
    }
}

/// What `ExperimentConfig` carries: either a spec compiled at run
/// start, or a recorded trace replayed verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// Compile this spec when the run starts.
    Spec(ScenarioSpec),
    /// Replay this recorded trace (see
    /// [`CompiledScenario::to_trace`](crate::compile::CompiledScenario::to_trace)).
    Trace(String),
}

impl Scenario {
    /// The scenario's name (trace replays carry theirs in the header).
    pub fn name(&self) -> &str {
        match self {
            Scenario::Spec(s) => &s.name,
            Scenario::Trace(t) => crate::trace::trace_name(t).unwrap_or("trace"),
        }
    }

    /// Resolves to the compiled event stream for the given run shape.
    ///
    /// # Panics
    ///
    /// Panics if a trace fails to parse, or if it does not fit the run
    /// (recorded for a different node count, churns an out-of-range
    /// node or the root, unsorted phases/events — see
    /// [`CompiledScenario::validate_for`]).
    pub fn resolve(
        &self,
        nodes: u32,
        root: u32,
        duration: SimDuration,
        seed: u64,
    ) -> CompiledScenario {
        match self {
            Scenario::Spec(s) => s.compile(nodes, root, duration, seed),
            Scenario::Trace(t) => {
                let c =
                    CompiledScenario::from_trace(t).expect("recorded scenario trace must parse");
                c.validate_for(nodes, root);
                c
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_valid_and_steady() {
        let s = ScenarioSpec::named("nothing");
        s.validate();
        assert!(s.link.is_none() && s.battery.is_none() && s.churn.is_none());
        assert!(s.traffic.is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted by start")]
    fn unsorted_phases_rejected() {
        let mut s = ScenarioSpec::named("bad");
        s.traffic = vec![
            TrafficPhase {
                from: SimTime::from_secs(10),
                rate_scale: 0.5,
            },
            TrafficPhase {
                from: SimTime::from_secs(5),
                rate_scale: 1.0,
            },
        ];
        s.validate();
    }

    #[test]
    #[should_panic(expected = "rate scale out of")]
    fn overdriven_phase_rejected() {
        let mut s = ScenarioSpec::named("bad");
        s.traffic = vec![TrafficPhase {
            from: SimTime::ZERO,
            rate_scale: 1.5,
        }];
        s.validate();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn empty_battery_rejected() {
        let mut s = ScenarioSpec::named("bad");
        s.battery = Some(BatterySpec {
            capacity_j: 0.0,
            check_period: SimDuration::from_millis(500),
        });
        s.validate();
    }
}
