//! The preset scenario library used by the harness figures.
//!
//! Presets that depend on the run's shape (phase boundaries, battery
//! sizing) take the run duration and scale themselves to it, so the
//! same preset name means the same *relative* scenario at `--scale
//! quick` and `--scale paper`.

use essat_sim::time::{SimDuration, SimTime};

use crate::gilbert::GilbertElliottParams;
use crate::spec::{BatterySpec, ChurnSpec, ClockSpec, ScenarioSpec, TrafficPhase};

/// MICA2 active power draw in watts; used to size `energy_drain`
/// batteries relative to the run length.
const ACTIVE_POWER_W: f64 = 0.045;

/// The static environment (a named no-op; useful as the control arm of
/// robustness comparisons).
pub fn steady() -> ScenarioSpec {
    ScenarioSpec::named("steady")
}

/// Bursty links: Gilbert–Elliott with ~5 s good spells, ~1 s loss
/// bursts dropping 75% of copies — the long-run loss rate is a modest
/// 12.5%, but it arrives in bursts that break schedule assumptions.
pub fn bursty_links() -> ScenarioSpec {
    ScenarioSpec {
        link: Some(GilbertElliottParams {
            mean_good: SimDuration::from_secs(5),
            mean_bad: SimDuration::from_secs(1),
            drop_good: 0.0,
            drop_bad: 0.75,
        }),
        ..ScenarioSpec::named("bursty_links")
    }
}

/// Diurnal traffic: the run alternates burst (full rate) and quiet
/// (20% rate) phases, six segments over the run.
pub fn diurnal(run: SimDuration) -> ScenarioSpec {
    let seg = SimDuration::from_nanos(run.as_nanos() / 6);
    let traffic = (0..6u64)
        .map(|i| TrafficPhase {
            from: SimTime::ZERO + seg * i,
            rate_scale: if i % 2 == 0 { 1.0 } else { 0.2 },
        })
        .collect();
    ScenarioSpec {
        traffic,
        ..ScenarioSpec::named("diurnal")
    }
}

/// Node churn: every fifth of the run a node (round-robin, never the
/// root) fails and recovers an eighth of the run later — §4.3 repair
/// plus re-integration, exercised continuously.
pub fn churn(run: SimDuration) -> ScenarioSpec {
    let fifth = SimDuration::from_nanos(run.as_nanos() / 5);
    ScenarioSpec {
        churn: Some(ChurnSpec::Periodic {
            first_at: SimTime::ZERO + fifth,
            period: fifth,
            down_for: SimDuration::from_nanos(run.as_nanos() / 8),
        }),
        ..ScenarioSpec::named("churn")
    }
}

/// Battery depletion: each node gets enough charge for ~35% of the run
/// fully active. Always-on protocols (SPAN cores, SYNC at high duty)
/// lose nodes mid-run; ESSAT sleepers survive — the network-lifetime
/// comparison the `lifetime` figure plots.
pub fn energy_drain(run: SimDuration) -> ScenarioSpec {
    let capacity_j = ACTIVE_POWER_W * run.as_secs_f64() * 0.35;
    let check = SimDuration::from_nanos((run.as_nanos() / 200).max(100_000_000));
    ScenarioSpec {
        battery: Some(BatterySpec {
            capacity_j,
            check_period: check,
        }),
        ..ScenarioSpec::named("energy_drain")
    }
}

/// Clock drift at magnitude `ppm`: per-node skews drawn in `±ppm` and
/// drift-rates in `±ppm/100` per second, so the rate error roughly
/// doubles over a 200 s paper-scale run. The `drift` figure sweeps this
/// preset's magnitude; `ppm = 0` compiles all-perfect clocks (the
/// control arm).
pub fn clock_drift(ppm: u32) -> ScenarioSpec {
    ScenarioSpec {
        clock: Some(ClockSpec::uniform(ppm as f64, ppm as f64 / 100.0)),
        ..ScenarioSpec::named(&format!("drift_{ppm}ppm"))
    }
}

/// All preset names, in presentation order.
pub const NAMES: [&str; 5] = ["steady", "bursty_links", "diurnal", "churn", "energy_drain"];

/// Looks a preset up by name, scaled to a run of length `run`.
pub fn by_name(name: &str, run: SimDuration) -> Option<ScenarioSpec> {
    match name {
        "steady" => Some(steady()),
        "bursty_links" => Some(bursty_links()),
        "diurnal" => Some(diurnal(run)),
        "churn" => Some(churn(run)),
        "energy_drain" => Some(energy_drain(run)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_validates() {
        let run = SimDuration::from_secs(50);
        for name in NAMES {
            let spec = by_name(name, run).unwrap_or_else(|| panic!("{name} missing"));
            spec.validate();
            assert_eq!(spec.name, name);
            // Every preset compiles for a small run.
            let c = spec.compile(16, 2, run, 7);
            assert_eq!(c.name, name);
        }
        assert!(by_name("nope", run).is_none());
    }

    #[test]
    fn diurnal_alternates_and_spans_run() {
        let run = SimDuration::from_secs(60);
        let d = diurnal(run);
        assert_eq!(d.traffic.len(), 6);
        assert_eq!(d.traffic[0].from, SimTime::ZERO);
        assert_eq!(d.traffic[1].from, SimTime::from_secs(10));
        assert_eq!(d.traffic[0].rate_scale, 1.0);
        assert_eq!(d.traffic[1].rate_scale, 0.2);
        assert_eq!(d.traffic[5].rate_scale, 0.2);
    }

    #[test]
    fn energy_drain_scales_with_run() {
        let short = energy_drain(SimDuration::from_secs(50));
        let long = energy_drain(SimDuration::from_secs(200));
        let (bs, bl) = (short.battery.unwrap(), long.battery.unwrap());
        assert!((bl.capacity_j / bs.capacity_j - 4.0).abs() < 1e-9);
        // 35% of a fully-active run.
        assert!((bs.capacity_j - 0.045 * 50.0 * 0.35).abs() < 1e-12);
    }

    #[test]
    fn clock_drift_preset_compiles_bounded_clocks() {
        use crate::compile::NodeClock;
        let run = SimDuration::from_secs(50);
        let c = clock_drift(100).compile(12, 0, run, 5);
        assert_eq!(c.name, "drift_100ppm");
        assert_eq!(c.clocks.len(), 12);
        assert!(c.clocks.iter().all(|k| k.skew_ppb.abs() <= 100_000));
        assert!(c.clocks.iter().any(|k| k.skew_ppb != 0));
        // Zero magnitude = the control arm: perfect clocks everywhere.
        let z = clock_drift(0).compile(12, 0, run, 5);
        assert!(z.clocks.iter().all(|k| k == &NodeClock::default()));
    }

    #[test]
    fn churn_preset_produces_paired_events() {
        let run = SimDuration::from_secs(100);
        let c = churn(run).compile(10, 0, run, 3);
        let downs = c.events.iter().filter(|e| !e.up).count();
        let ups = c.events.iter().filter(|e| e.up).count();
        assert!(downs >= 3, "several outages over the run");
        assert!(ups >= downs - 1, "recoveries follow failures");
    }
}
