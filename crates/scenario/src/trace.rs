//! The record/replay trace codec.
//!
//! A trace is a line-oriented plain-text document:
//!
//! ```text
//! essat-scenario-trace v1
//! name energy_drain
//! nodes 40
//! link <mean_good_ns> <mean_bad_ns> <drop_good> <drop_bad>
//! battery <capacity_j> <check_period_ns>
//! phase <from_ns> <rate_scale>
//! down <at_ns> <node>
//! up <at_ns> <node>
//! clock <node> <skew_ppb> <drift_ppb_per_s>
//! glitch <at_ns> <node> <delta_ns>
//! ```
//!
//! `link`/`battery` appear at most once; `phase` lines are sorted by
//! start; `down`/`up` lines are the churn event stream in its sorted
//! order; `clock` lines (one per node when clock faults are enabled)
//! carry the compiled integer skew/drift rates, `glitch` lines the
//! scripted signed clock steps. Floats use Rust's shortest round-trip
//! formatting, so
//! `from_trace(to_trace(c)) == c` exactly and re-serialising a parsed
//! trace reproduces it **byte-identically** — the property the
//! record/replay tests pin.

use essat_sim::time::{SimDuration, SimTime};

use crate::compile::{CompiledScenario, NodeClock, ScenarioEvent};
use crate::gilbert::GilbertElliottParams;
use crate::spec::{BatterySpec, GlitchStep, TrafficPhase};

const HEADER: &str = "essat-scenario-trace v1";

/// Serialises a compiled scenario.
pub fn to_trace(c: &CompiledScenario) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "name {}", c.name);
    let _ = writeln!(out, "nodes {}", c.nodes);
    if let Some(ge) = &c.link {
        let _ = writeln!(
            out,
            "link {} {} {} {}",
            ge.mean_good.as_nanos(),
            ge.mean_bad.as_nanos(),
            ge.drop_good,
            ge.drop_bad
        );
    }
    if let Some(b) = &c.battery {
        let _ = writeln!(
            out,
            "battery {} {}",
            b.capacity_j,
            b.check_period.as_nanos()
        );
    }
    for p in &c.traffic {
        let _ = writeln!(out, "phase {} {}", p.from.as_nanos(), p.rate_scale);
    }
    for e in &c.events {
        let kind = if e.up { "up" } else { "down" };
        let _ = writeln!(out, "{kind} {} {}", e.at.as_nanos(), e.node);
    }
    for (node, clk) in c.clocks.iter().enumerate() {
        let _ = writeln!(out, "clock {node} {} {}", clk.skew_ppb, clk.drift_ppb_per_s);
    }
    for g in &c.glitches {
        let _ = writeln!(out, "glitch {} {} {}", g.at.as_nanos(), g.node, g.delta_ns);
    }
    out
}

/// Reads the scenario name out of a trace without a full parse.
pub fn trace_name(trace: &str) -> Option<&str> {
    trace
        .lines()
        .find_map(|l| l.strip_prefix("name "))
        .map(str::trim)
}

fn parse_u64(field: Option<&str>, line: &str) -> Result<u64, String> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| format!("malformed integer in trace line: {line}"))
}

fn parse_f64(field: Option<&str>, line: &str) -> Result<f64, String> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| format!("malformed float in trace line: {line}"))
}

fn parse_i64(field: Option<&str>, line: &str) -> Result<i64, String> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| format!("malformed signed integer in trace line: {line}"))
}

/// Parses a trace back into the compiled scenario it recorded.
pub fn from_trace(trace: &str) -> Result<CompiledScenario, String> {
    let mut lines = trace.lines();
    if lines.next().map(str::trim) != Some(HEADER) {
        return Err(format!("missing trace header `{HEADER}`"));
    }
    let mut c = CompiledScenario::default();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line has a first token");
        match tag {
            "name" => c.name = line["name".len()..].trim().to_string(),
            "nodes" => c.nodes = parse_u64(parts.next(), line)? as u32,
            "link" => {
                c.link = Some(GilbertElliottParams {
                    mean_good: SimDuration::from_nanos(parse_u64(parts.next(), line)?),
                    mean_bad: SimDuration::from_nanos(parse_u64(parts.next(), line)?),
                    drop_good: parse_f64(parts.next(), line)?,
                    drop_bad: parse_f64(parts.next(), line)?,
                });
            }
            "battery" => {
                c.battery = Some(BatterySpec {
                    capacity_j: parse_f64(parts.next(), line)?,
                    check_period: SimDuration::from_nanos(parse_u64(parts.next(), line)?),
                });
            }
            "phase" => {
                c.traffic.push(TrafficPhase {
                    from: SimTime::from_nanos(parse_u64(parts.next(), line)?),
                    rate_scale: parse_f64(parts.next(), line)?,
                });
            }
            "down" | "up" => {
                c.events.push(ScenarioEvent {
                    at: SimTime::from_nanos(parse_u64(parts.next(), line)?),
                    node: parse_u64(parts.next(), line)? as u32,
                    up: tag == "up",
                });
            }
            "clock" => {
                let node = parse_u64(parts.next(), line)? as usize;
                if node != c.clocks.len() {
                    return Err(format!(
                        "clock lines must appear in node order (expected node {}): {line}",
                        c.clocks.len()
                    ));
                }
                c.clocks.push(NodeClock {
                    skew_ppb: parse_i64(parts.next(), line)?,
                    drift_ppb_per_s: parse_i64(parts.next(), line)?,
                });
            }
            "glitch" => {
                c.glitches.push(GlitchStep {
                    at: SimTime::from_nanos(parse_u64(parts.next(), line)?),
                    node: parse_u64(parts.next(), line)? as u32,
                    delta_ns: parse_i64(parts.next(), line)?,
                });
            }
            other => return Err(format!("unknown trace line tag `{other}`")),
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChurnSpec, ScenarioSpec};

    fn rich_scenario() -> CompiledScenario {
        use crate::spec::ClockSpec;
        let mut spec = ScenarioSpec::named("kitchen_sink");
        spec.clock = Some(ClockSpec {
            skew_ppm: 40.0,
            drift_ppm_per_s: 1.5,
            glitches: vec![
                GlitchStep {
                    at: SimTime::from_secs(12),
                    node: 5,
                    delta_ns: -750_000,
                },
                GlitchStep {
                    at: SimTime::from_secs(30),
                    node: 9,
                    delta_ns: 2_000_000,
                },
            ],
        });
        spec.link = Some(GilbertElliottParams {
            mean_good: SimDuration::from_millis(3_500),
            mean_bad: SimDuration::from_millis(900),
            drop_good: 0.0125,
            drop_bad: 0.875,
        });
        spec.battery = Some(BatterySpec {
            capacity_j: 0.731,
            check_period: SimDuration::from_millis(250),
        });
        spec.churn = Some(ChurnSpec::Random {
            mean_uptime: SimDuration::from_secs(7),
            mean_downtime: SimDuration::from_secs(2),
        });
        spec.traffic = vec![
            TrafficPhase {
                from: SimTime::from_secs(5),
                rate_scale: 0.2,
            },
            TrafficPhase {
                from: SimTime::from_secs(25),
                rate_scale: 1.0,
            },
        ];
        spec.compile(24, 3, SimDuration::from_secs(60), 4242)
    }

    #[test]
    fn round_trip_is_exact_and_byte_identical() {
        let c = rich_scenario();
        assert!(!c.clocks.is_empty(), "clock faults compiled");
        assert_eq!(c.glitches.len(), 2, "scripted glitches carried over");
        let trace = to_trace(&c);
        let parsed = from_trace(&trace).expect("parses");
        assert_eq!(parsed, c, "structural round trip");
        assert_eq!(to_trace(&parsed), trace, "byte-identical re-serialisation");
    }

    #[test]
    fn rejects_out_of_order_clock_lines() {
        let t = "essat-scenario-trace v1\nname x\nnodes 2\nclock 1 5 0";
        assert!(from_trace(t).is_err());
    }

    #[test]
    fn empty_scenario_round_trips() {
        let c = ScenarioSpec::named("steady").compile(8, 0, SimDuration::from_secs(10), 1);
        let parsed = from_trace(&to_trace(&c)).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn name_peek() {
        let c = rich_scenario();
        assert_eq!(trace_name(&to_trace(&c)), Some("kitchen_sink"));
        assert_eq!(trace_name("no header here"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_trace("not a trace").is_err());
        assert!(from_trace("essat-scenario-trace v1\nbogus 1 2").is_err());
        assert!(from_trace("essat-scenario-trace v1\ndown nope 3").is_err());
    }
}
