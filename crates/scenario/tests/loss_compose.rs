//! Regression test for the PR 3 review finding: an installed per-link
//! [`LossModel`] (the scenario engine's Gilbert–Elliott process) used to
//! silently *override* the channel's configured baseline
//! `drop_probability` instead of composing with it. A scenario that
//! enabled bursty links therefore turned the §4.3 transient-loss
//! injection off entirely.
//!
//! The contract now is composition: a frame copy is lost if the model
//! drops it **or** the baseline random loss fires.

use essat_net::channel::Channel;
use essat_net::ids::NodeId;
use essat_net::topology::Topology;
use essat_scenario::gilbert::{GilbertElliott, GilbertElliottParams};
use essat_sim::rng::SimRng;
use essat_sim::time::{SimDuration, SimTime};

/// A Gilbert–Elliott process that never drops anything: pinned to the
/// good state (enormous mean sojourn) with `drop_good = 0`.
fn never_dropping_links(nodes: u32) -> GilbertElliott {
    let params = GilbertElliottParams {
        mean_good: SimDuration::from_secs(1_000_000),
        mean_bad: SimDuration::from_micros(1),
        drop_good: 0.0,
        drop_bad: 1.0,
    };
    params.validate();
    GilbertElliott::new(nodes as usize, params, SimRng::seed_from_u64(3))
}

#[test]
fn baseline_drop_probability_survives_an_installed_model() {
    let topo = Topology::line(2, 10.0, 12.0);
    let mut ch = Channel::new(&topo, SimRng::seed_from_u64(7));
    ch.set_drop_probability(0.3);
    // A model that never drops must leave the measured loss at the
    // baseline rate, not at zero (the override bug).
    ch.set_loss_model(Box::new(never_dropping_links(2)));
    let trials = 2_000u64;
    let mut dropped = 0u64;
    for i in 0..trials {
        let t0 = SimTime::from_micros(i * 1_000);
        let tx = ch.begin_tx(t0, NodeId::new(0), SimDuration::from_micros(416));
        let end = ch.end_tx(t0 + SimDuration::from_micros(416), tx.id);
        if end.corrupted_receivers.contains(&NodeId::new(1)) {
            dropped += 1;
        }
        ch.recycle_nodes(tx.now_busy);
        ch.recycle_nodes(end.clean_receivers);
        ch.recycle_nodes(end.corrupted_receivers);
        ch.recycle_nodes(end.now_idle);
    }
    let frac = dropped as f64 / trials as f64;
    assert!(
        (frac - 0.3).abs() < 0.05,
        "baseline loss must compose with the model: observed {frac}, expected ≈ 0.3"
    );
    assert_eq!(ch.stats().injected_drops, dropped);
}

#[test]
fn bursty_bad_state_composes_with_baseline() {
    // A GE process pinned to the *bad* state with certain loss: every
    // copy dies regardless of the (low) baseline — and with the model
    // removed, the baseline alone takes over again.
    let topo = Topology::line(2, 10.0, 12.0);
    let mut ch = Channel::new(&topo, SimRng::seed_from_u64(11));
    ch.set_drop_probability(0.2);
    let params = GilbertElliottParams {
        mean_good: SimDuration::from_micros(1),
        mean_bad: SimDuration::from_secs(1_000_000),
        drop_good: 0.0,
        drop_bad: 1.0,
    };
    // Seed 5's first sojourn draw starts link (0 → 1) in one of the two
    // states; drive long enough that the chain is certainly bad.
    let ge = GilbertElliott::new(2, params, SimRng::seed_from_u64(5));
    ch.set_loss_model(Box::new(ge));
    let mut all_dropped = true;
    for i in 0..200u64 {
        // Well past any initial good sojourn (microseconds long).
        let t0 = SimTime::from_micros(1_000_000 + i * 1_000);
        let tx = ch.begin_tx(t0, NodeId::new(0), SimDuration::from_micros(416));
        let end = ch.end_tx(t0 + SimDuration::from_micros(416), tx.id);
        all_dropped &= end.corrupted_receivers.contains(&NodeId::new(1));
    }
    assert!(all_dropped, "certain bad-state loss must drop every copy");
    // Baseline-only behaviour returns once the model is cleared.
    ch.clear_loss_model();
    let trials = 2_000u64;
    let mut dropped = 0u64;
    for i in 0..trials {
        let t0 = SimTime::from_micros(10_000_000 + i * 1_000);
        let tx = ch.begin_tx(t0, NodeId::new(0), SimDuration::from_micros(416));
        let end = ch.end_tx(t0 + SimDuration::from_micros(416), tx.id);
        if end.corrupted_receivers.contains(&NodeId::new(1)) {
            dropped += 1;
        }
    }
    let frac = dropped as f64 / trials as f64;
    assert!((frac - 0.2).abs() < 0.05, "baseline-only loss: {frac}");
}
