//! §4.3 robustness: transient loss, node failure, and recovery — the
//! paper's protocol-maintenance behaviours, asserted end to end.

use essat::scenario::presets;
use essat::scenario::spec::Scenario;
use essat::sim::time::{SimDuration, SimTime};
use essat::wsn::config::{ExperimentConfig, Protocol, RepairConfig, SetupMode, WorkloadSpec};
use essat::wsn::runner;

fn cfg(protocol: Protocol, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(1.0), seed);
    cfg.duration = SimDuration::from_secs(60);
    cfg
}

/// Transient packet loss: ESSAT protocols keep collecting (partial
/// aggregation + timeouts), and DTS issues phase-update requests to
/// resynchronise.
#[test]
fn transient_loss_degrades_gracefully() {
    for protocol in [Protocol::NtsSs, Protocol::StsSs, Protocol::DtsSs] {
        let clean = runner::run_one(&cfg(protocol, 41));
        let lossy = runner::run_one(&cfg(protocol, 41).with_drop_probability(0.05));
        assert!(
            lossy.delivery_ratio() > 0.75,
            "{protocol}: delivery {} collapsed under 5% loss",
            lossy.delivery_ratio()
        );
        assert!(
            lossy.delivery_ratio() <= clean.delivery_ratio() + 0.02,
            "{protocol}: loss can't improve delivery"
        );
        // Rounds still complete at the root throughout (compare each
        // query against its clean counterpart — rates differ by class).
        for (ql, qc) in lossy.queries.iter().zip(&clean.queries) {
            assert!(
                ql.rounds_completed as f64 >= 0.8 * qc.rounds_completed as f64,
                "{protocol}: rounds collapsed under loss ({} vs {})",
                ql.rounds_completed,
                qc.rounds_completed
            );
        }
    }
}

/// DTS resynchronises after losses (§4.3).
///
/// Light loss is fully absorbed by MAC retries (7 attempts make the
/// end-to-end frame loss ~(1−(1−p)²)⁷ ≈ 0), so report-level *gaps* only
/// appear under heavy loss — hence the 40% injection. Resynchronisation
/// is sender-driven here (a failed exchange forces a phase update onto
/// the next report), which pre-empts most receiver-side requests; the
/// observable is therefore extra piggybacked phases, not request
/// packets.
#[test]
fn dts_resynchronises_under_loss() {
    let clean = runner::run_one(&cfg(Protocol::DtsSs, 43));
    let lossy = runner::run_one(&cfg(Protocol::DtsSs, 43).with_drop_probability(0.40));
    assert!(
        lossy.mac.failed > 0,
        "40% loss should exhaust some retry budgets"
    );
    let clean_rate = clean.phase_piggybacks as f64 / clean.reports_sent.max(1) as f64;
    let lossy_rate = lossy.phase_piggybacks as f64 / lossy.reports_sent.max(1) as f64;
    assert!(
        lossy_rate > clean_rate * 1.5,
        "loss must force extra phase updates: {lossy_rate:.4} vs clean {clean_rate:.4}"
    );
    assert!(
        lossy.delivery_ratio() > 0.5,
        "resync should keep the system collecting: {}",
        lossy.delivery_ratio()
    );
    // NTS has no phases to advertise at all.
    let nts = runner::run_one(&cfg(Protocol::NtsSs, 43).with_drop_probability(0.40));
    assert_eq!(nts.phase_piggybacks, 0, "NTS never piggybacks");
    assert_eq!(nts.phase_requests, 0, "NTS never requests resync");
}

/// A failed relay is detected and routed around; reporting continues.
#[test]
fn node_failure_recovery() {
    for protocol in [Protocol::DtsSs, Protocol::StsSs, Protocol::NtsSs] {
        let base = cfg(protocol, 5);
        let healthy = runner::run_one(&base);
        // Fail a node mid-run. Node index 1 is an arbitrary member at
        // this seed (the failure machinery tolerates leaves too).
        let failed = base.clone().with_node_failure(SimTime::from_secs(20), 1);
        let wounded = runner::run_one(&failed);
        assert!(
            wounded.delivery_ratio() > healthy.delivery_ratio() - 0.15,
            "{protocol}: delivery {} vs healthy {} — recovery failed",
            wounded.delivery_ratio(),
            healthy.delivery_ratio()
        );
        // The run keeps completing rounds to the very end.
        let last_at = wounded
            .queries
            .iter()
            .flat_map(|q| q.records.iter().map(|r| r.at))
            .max()
            .expect("rounds completed");
        assert!(
            last_at > SimTime::from_secs(55),
            "{protocol}: reporting stopped after the failure (last at {last_at})"
        );
    }
}

/// Flooded query dissemination (§4.1 setup slot): queries reach the
/// network in-band and the system still works.
#[test]
fn flooded_setup_registers_queries() {
    let mut c = cfg(Protocol::DtsSs, 47);
    c.setup_mode = SetupMode::Flooded;
    let r = runner::run_one(&c);
    assert!(
        r.delivery_ratio() > 0.75,
        "flooded setup delivery {}",
        r.delivery_ratio()
    );
    for q in &r.queries {
        assert!(q.rounds_completed > 0, "query {:?} never ran", q.query);
    }
}

/// Loss injection sanity: heavier loss, lower delivery — monotone in
/// the right direction. Pinned to the legacy path: deadline-budgeted
/// retransmission deliberately compensates injected loss (it can even
/// beat the fault-free run, whose contention losses get no second
/// dispatch), which would blur the monotonicity this asserts.
#[test]
fn loss_monotonicity() {
    let legacy = |seed| cfg(Protocol::DtsSs, seed).with_repair(RepairConfig::disabled());
    let d0 = runner::run_one(&legacy(53)).delivery_ratio();
    let d10 = runner::run_one(&legacy(53).with_drop_probability(0.10)).delivery_ratio();
    let d30 = runner::run_one(&legacy(53).with_drop_probability(0.30)).delivery_ratio();
    assert!(d0 > d10 - 0.02, "{d0} vs {d10}");
    assert!(d10 > d30, "{d10} vs {d30}");
    assert!(
        d30 > 0.2,
        "even heavy loss shouldn't zero out delivery: {d30}"
    );
}

/// MAC-level retries mask most single-frame losses: with light loss the
/// retry counters grow but delivery barely moves.
#[test]
fn mac_retries_absorb_light_loss() {
    let clean = runner::run_one(&cfg(Protocol::NtsSs, 59));
    let lossy = runner::run_one(&cfg(Protocol::NtsSs, 59).with_drop_probability(0.05));
    assert!(
        lossy.mac.retries > clean.mac.retries,
        "injected loss must cause extra retries ({} vs {})",
        lossy.mac.retries,
        clean.mac.retries
    );
    assert!(
        lossy.delivery_ratio() > 0.9,
        "retries should mask 5% loss, got delivery {}",
        lossy.delivery_ratio()
    );
}

/// The two-range interference model (carrier-sense beyond decode
/// range). Two opposing effects: hidden terminals can now corrupt
/// receptions from outside decode range, but wider carrier sensing also
/// makes MACs defer more, *avoiding* overlaps. Either way the system
/// must keep functioning, and the channel must behave differently from
/// the one-range model.
#[test]
fn interference_range_still_functions() {
    let one = runner::run_one(&cfg(Protocol::DtsSs, 61));
    let two = {
        let mut c = cfg(Protocol::DtsSs, 61);
        c.interference_range = Some(c.range * 1.8);
        runner::run_one(&c)
    };
    assert_ne!(
        two.events_processed, one.events_processed,
        "two-range model must actually change channel behaviour"
    );
    assert!(
        two.delivery_ratio() > 0.7,
        "hidden-terminal corruption shouldn't collapse delivery: {}",
        two.delivery_ratio()
    );
    assert!(
        two.avg_duty_cycle_pct() < 50.0,
        "sleeping must keep working under the harsher model: {}",
        two.avg_duty_cycle_pct()
    );
}

/// The self-healing layer compiles to a no-op on fault-free runs: with
/// nothing to detect, the link-quality EWMA is pure arithmetic nothing
/// reads, no repair timer ever arms, and the event stream — and hence
/// the full metrics digest — is byte-identical with repair on or off.
/// This is the runtime form of the golden-digest guarantee.
#[test]
fn repair_is_invisible_on_fault_free_runs() {
    for protocol in [
        Protocol::DtsSs,
        Protocol::StsSs,
        Protocol::NtsSs,
        Protocol::TagSs,
        Protocol::Sync,
        Protocol::Psm,
        Protocol::Span,
        Protocol::AlwaysOn,
    ] {
        let on = runner::run_one(&cfg(protocol, 71));
        let off = runner::run_one(&cfg(protocol, 71).with_repair(RepairConfig::disabled()));
        assert_eq!(
            on.digest(),
            off.digest(),
            "{protocol}: fault-free run diverged with repair enabled"
        );
        assert_eq!(on.repairs, 0, "{protocol}: repair ran without faults");
        assert_eq!(on.redispatches, 0, "{protocol}: redispatch without faults");
    }
}

/// Under churn, self-healing must repair the tree (repairs counted,
/// orphan time bounded) and never cost delivery relative to the legacy
/// synchronous path it replaces.
#[test]
fn self_healing_repairs_under_churn() {
    for (protocol, seed) in [(Protocol::DtsSs, 11), (Protocol::NtsSs, 13)] {
        let base = cfg(protocol, seed)
            .with_scenario(Scenario::Spec(presets::churn(SimDuration::from_secs(60))));
        let on = runner::run_one(&base);
        let off = runner::run_one(&base.clone().with_repair(RepairConfig::disabled()));
        assert_eq!(off.repairs, 0, "disabled arm must not count repairs");
        assert!(
            on.delivery_ratio() >= off.delivery_ratio() - 0.02,
            "{protocol}: self-healing lost delivery ({} vs {})",
            on.delivery_ratio(),
            off.delivery_ratio()
        );
        // Orphan accounting is bounded by run length × node count.
        let bound = 60.0 * on.nodes.len() as f64;
        assert!(
            on.orphan_node_seconds() <= bound,
            "{protocol}: orphan seconds {} exceed bound {bound}",
            on.orphan_node_seconds()
        );
    }
}

/// Partition accounting under churn: `partition` is no longer a
/// permanent mark. A healed network records `partition_recovered_at`
/// and reports only the actual outage as time-in-partition — the
/// regression this pins is `time_in_partition == duration - partition`
/// forever after the first episode.
#[test]
fn partition_episodes_heal_under_churn() {
    let mut recovered_somewhere = false;
    for seed in [2, 3, 5, 7] {
        // Sparse placement (12 nodes over the paper's 500 m side) so
        // churn actually severs the tree: the dense quick topology
        // re-attaches every orphan instantly and no episode ever opens.
        let mut base = cfg(Protocol::DtsSs, seed);
        base.nodes = 12;
        base.area_side = 500.0;
        let base = base.with_scenario(Scenario::Spec(presets::churn(SimDuration::from_secs(60))));
        let r = runner::run_one(&base);
        let tip = r.time_in_partition_s();
        assert!(
            (0.0..=60.0).contains(&tip),
            "seed {seed}: time-in-partition {tip} outside the run"
        );
        match (r.lifetime.partition, r.lifetime.partition_recovered_at) {
            (None, rec) => {
                assert!(rec.is_none(), "seed {seed}: recovery without partition");
                assert_eq!(tip, 0.0, "seed {seed}: partitioned time without episode");
            }
            (Some(p), Some(rec)) => {
                assert!(rec >= p, "seed {seed}: recovered before partitioned");
                // The healed network must NOT report partitioned-forever.
                let forever = 60.0 - p.as_nanos() as f64 * 1e-9;
                assert!(
                    tip < forever,
                    "seed {seed}: partition still treated as permanent \
                     ({tip} vs censored {forever})"
                );
                recovered_somewhere = true;
            }
            (Some(_), None) => { /* still partitioned at run end: censored */ }
        }
    }
    assert!(
        recovered_somewhere,
        "no churn seed ever healed a partition — recovery path untested"
    );
}
