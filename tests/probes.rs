//! Observability invariants: attaching any probe must leave every
//! simulation byte-identical — same golden digests, same figure CSVs,
//! whatever the thread count — and the probe artifacts themselves must
//! be well-formed (Perfetto-valid traces, lossless JSONL round-trips,
//! sampler rows that reconcile exactly with the `RunResult` totals).

use essat::harness::executor::SweepExecutor;
use essat::harness::figures;
use essat::harness::scale::Scale;
use essat::obs::perfetto;
use essat::obs::sample::TimeSeriesSampler;
use essat::obs::trace::{parse_jsonl, TimelineTracer};
use essat::obs::{json, Fanout};
use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner::{run_one, run_probed};

const GOLDEN: &str = include_str!("golden/quick_digests.txt");
const SEED: u64 = 2025;

const ALL: [Protocol; 8] = [
    Protocol::DtsSs,
    Protocol::StsSs,
    Protocol::NtsSs,
    Protocol::TagSs,
    Protocol::Sync,
    Protocol::Psm,
    Protocol::Span,
    Protocol::AlwaysOn,
];

fn short_cfg(protocol: Protocol, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(2.0), seed);
    cfg.duration = SimDuration::from_secs(20);
    cfg
}

/// The acceptance invariant: with the tracer AND the sampler attached,
/// every protocol still digests to the committed golden value — the
/// probes observed a bit-identical run.
#[test]
fn golden_digests_unchanged_with_probes_attached() {
    let golden: Vec<(String, String)> = GOLDEN
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (name, digest) = l.rsplit_once(' ').expect("`<protocol> <digest>` lines");
            (name.to_string(), digest.to_string())
        })
        .collect();
    assert_eq!(golden.len(), ALL.len(), "golden file covers all protocols");
    for (&p, (name, expected)) in ALL.iter().zip(&golden) {
        assert_eq!(&p.to_string(), name, "golden file order matches ALL");
        let cfg = Scale::Quick.config(p, WorkloadSpec::paper(1.0), SEED);
        let probe = Fanout(
            TimelineTracer::new(),
            TimeSeriesSampler::new(SimDuration::from_secs(5)),
        );
        let (result, Fanout(tracer, sampler)) = run_probed(&cfg, probe);
        assert_eq!(
            &result.digest(),
            expected,
            "{p}: digest drifted with probes attached"
        );
        assert!(!tracer.events().is_empty(), "{p}: tracer saw nothing");
        assert!(!sampler.rows().is_empty(), "{p}: sampler saw nothing");
    }
}

/// Figure CSVs must be byte-identical across thread counts, and a
/// probed side-run in between must not disturb them (the `--trace` /
/// `--sample` wiring in `essat-figures`).
#[test]
fn figure_csvs_identical_across_threads_and_probes() {
    let lifetime = figures::lifetime_cells(Scale::Quick, SEED);
    let drift = figures::drift_cells(Scale::Quick, SEED);

    let serial_lifetime = SweepExecutor::with_threads(1).run(&lifetime);
    let serial_drift = SweepExecutor::with_threads(1).run(&drift);
    let lifetime_csv = figures::lifetime_from(&serial_lifetime).to_csv();
    let drift_csv = {
        let d = figures::drift_from(&serial_drift, Scale::Quick);
        (d.delivery.to_csv(), d.missed.to_csv())
    };

    // The probed side-run, as `essat-figures --trace --sample` does it.
    let probe = Fanout(
        TimelineTracer::new(),
        TimeSeriesSampler::new(SimDuration::from_secs(5)),
    );
    let (_, _) = run_probed(&lifetime[0].cfg, probe);

    let parallel_lifetime = SweepExecutor::with_threads(8).run(&lifetime);
    let parallel_drift = SweepExecutor::with_threads(8).run(&drift);
    assert_eq!(
        lifetime_csv,
        figures::lifetime_from(&parallel_lifetime).to_csv(),
        "lifetime CSV differs across thread counts"
    );
    let d = figures::drift_from(&parallel_drift, Scale::Quick);
    assert_eq!(drift_csv.0, d.delivery.to_csv(), "drift delivery CSV");
    assert_eq!(drift_csv.1, d.missed.to_csv(), "drift missed CSV");
}

/// The compact JSONL codec loses nothing on a real run's trace.
#[test]
fn trace_jsonl_roundtrip_on_real_run() {
    let cfg = short_cfg(Protocol::DtsSs, 7);
    let (_, tracer) = run_probed(&cfg, TimelineTracer::new());
    assert!(!tracer.events().is_empty());
    let doc = tracer.to_jsonl();
    let parsed = parse_jsonl(&doc).expect("emitted JSONL parses");
    assert_eq!(parsed, tracer.events(), "JSONL round-trip not lossless");
}

/// Both Perfetto emitters — the simulation tracer and the executor
/// profiler — produce structurally valid trace-event documents.
#[test]
fn perfetto_documents_validate() {
    let cfg = short_cfg(Protocol::StsSs, 9);
    let (_, tracer) = run_probed(&cfg, TimelineTracer::new());
    let doc = tracer.to_perfetto_json();
    let n = perfetto::validate(&doc).expect("tracer document validates");
    assert!(n > 0, "trace is non-empty");

    let mut exec = SweepExecutor::with_threads(2);
    exec.run(&figures::lifetime_cells(Scale::Quick, SEED)[..1]);
    let prof = exec.profile_perfetto();
    let n = perfetto::validate(&prof).expect("profiler document validates");
    assert!(n > 0, "profile is non-empty");
    assert!(!exec.profiles().is_empty());
}

/// The sampler's final row set reconciles exactly — bit-for-bit — with
/// the `RunResult` per-node totals: same energy, same duty cycle.
#[test]
fn sampler_final_rows_match_run_result_totals() {
    let cfg = short_cfg(Protocol::NtsSs, 11);
    let bare = run_one(&cfg);
    let (result, sampler) = run_probed(&cfg, TimeSeriesSampler::new(SimDuration::from_secs(5)));
    assert_eq!(bare.digest(), result.digest());
    let rows = sampler.rows();
    let n = result.nodes.len();
    assert!(rows.len() >= n, "at least one full row set");
    let last = &rows[rows.len() - n..];
    for (row, node) in last.iter().zip(&result.nodes) {
        assert_eq!(
            row.energy_j, node.energy_j,
            "node {}: sampler end-of-run energy differs from RunResult",
            row.node
        );
        assert_eq!(
            row.duty_cycle, node.duty_cycle,
            "node {}: sampler end-of-run duty cycle differs from RunResult",
            row.node
        );
    }
}

/// The extended `BENCH_harness.json` record parses and carries both
/// the original keys (CI's bench gate reads `events_per_sec`) and the
/// profiling extension; the failures document parses too.
#[test]
fn bench_json_carries_profiling_extension() {
    let mut exec = SweepExecutor::with_threads(2);
    let cells = figures::lifetime_cells(Scale::Quick, SEED)[..1].to_vec();
    let outcome = exec.run_checked(&cells);
    assert!(outcome.failures.is_empty());
    let doc = exec.stats().to_json(exec.threads());
    let root = json::parse(&doc).expect("bench JSON parses");
    for key in [
        "threads",
        "jobs",
        "events",
        "wall_clock_s",
        "events_per_sec",
        "peak_queue_depth",
        "build_s",
        "run_s",
        "finalize_s",
    ] {
        assert!(
            root.get(key).and_then(|v| v.as_num()).is_some(),
            "missing numeric key {key}"
        );
    }
    let workers = root
        .get("workers")
        .and_then(|v| v.as_arr())
        .expect("workers array");
    assert_eq!(workers.len(), 2, "one entry per worker");
    for w in workers {
        assert!(w.get("jobs").and_then(|v| v.as_num()).is_some());
        assert!(w.get("busy_s").and_then(|v| v.as_num()).is_some());
    }
    let failures = json::parse(&outcome.failures_json()).expect("failures JSON parses");
    assert_eq!(
        failures
            .get("failures")
            .and_then(|v| v.as_arr())
            .map(|a| a.len()),
        Some(0)
    );
}
