//! Safe Sleep's "no penalty" guarantee, observed end to end.
//!
//! The paper's §4.1 argument: because nodes wake `t_OFF→ON` early and
//! only sleep past the break-even time, turning radios off must cost
//! neither deliveries nor (beyond shaping delay) latency. These tests
//! compare sleeping protocols against an always-on control on identical
//! topologies and seeds.

use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

fn cfg(protocol: Protocol, seed: u64, rate: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(rate), seed);
    cfg.duration = SimDuration::from_secs(40);
    cfg
}

/// Sleeping under NTS-SS costs (almost) no deliveries relative to
/// never sleeping: receivers are awake whenever the shared schedule
/// says a report may arrive.
#[test]
fn sleeping_does_not_lose_deliveries() {
    for seed in [1, 2] {
        let awake = runner::run_one(&cfg(Protocol::AlwaysOn, seed, 1.0));
        let nts = runner::run_one(&cfg(Protocol::NtsSs, seed, 1.0));
        assert!(
            nts.delivery_ratio() > awake.delivery_ratio() - 0.05,
            "seed {seed}: NTS delivery {} vs always-on {}",
            nts.delivery_ratio(),
            awake.delivery_ratio()
        );
        // And it actually slept.
        assert!(
            nts.avg_duty_cycle_pct() < awake.avg_duty_cycle_pct() / 2.0,
            "seed {seed}: NTS duty {} suggests it never slept",
            nts.avg_duty_cycle_pct()
        );
    }
}

/// NTS introduces no delay penalty relative to always-on forwarding
/// (the paper's §4.2.1 claim): latencies stay within the MAC's noise.
#[test]
fn nts_latency_matches_always_on() {
    let awake = runner::run_one(&cfg(Protocol::AlwaysOn, 3, 2.0));
    let nts = runner::run_one(&cfg(Protocol::NtsSs, 3, 2.0));
    let ratio = nts.avg_latency_s() / awake.avg_latency_s();
    assert!(
        ratio < 1.6,
        "NTS latency {}s vs always-on {}s — sleeping added delay",
        nts.avg_latency_s(),
        awake.avg_latency_s()
    );
}

/// The always-on control itself: 100% duty, full delivery.
#[test]
fn always_on_control_is_clean() {
    let r = runner::run_one(&cfg(Protocol::AlwaysOn, 4, 2.0));
    assert!(
        r.avg_duty_cycle_pct() > 99.9,
        "duty {}",
        r.avg_duty_cycle_pct()
    );
    assert!(r.delivery_ratio() > 0.97, "delivery {}", r.delivery_ratio());
    assert_eq!(r.phase_piggybacks, 0);
}

/// PSM's duty cycle never drops below its ATIM floor (awake every
/// beacon interval), even at trivial load — the structural inefficiency
/// the paper contrasts ESSAT against.
#[test]
fn psm_pays_its_atim_floor() {
    let r = runner::run_one(&cfg(Protocol::Psm, 5, 0.2));
    let floor_pct = 100.0 * 0.025 / 0.2; // ATIM / beacon = 12.5%
    assert!(
        r.avg_duty_cycle_pct() > floor_pct * 0.8,
        "PSM duty {} below its structural floor {floor_pct}",
        r.avg_duty_cycle_pct()
    );
    // ESSAT at the same load goes far below that floor.
    let dts = runner::run_one(&cfg(Protocol::DtsSs, 5, 0.2));
    assert!(
        dts.avg_duty_cycle_pct() < floor_pct / 2.0,
        "DTS duty {} should undercut PSM's floor",
        dts.avg_duty_cycle_pct()
    );
}

/// Radio duty cycles and energy track each other: a node that is awake
/// more consumes more.
#[test]
fn energy_tracks_duty() {
    let r = runner::run_one(&cfg(Protocol::NtsSs, 6, 2.0));
    let mut nodes = r.nodes.clone();
    nodes.sort_by(|a, b| a.duty_cycle.total_cmp(&b.duty_cycle));
    let lo = &nodes[0];
    let hi = &nodes[nodes.len() - 1];
    assert!(
        hi.energy_j > lo.energy_j,
        "duty {:.3} node used {:.4} J but duty {:.3} node used {:.4} J",
        hi.duty_cycle,
        hi.energy_j,
        lo.duty_cycle,
        lo.energy_j
    );
}

/// A node whose battery ran flat is dead for good: churn `resurrect`
/// events must not bring it back (churn models transient outages, not
/// battery swaps — and a revived flat battery would just zombie along
/// until the next depletion sweep). Flagged in the PR 3 review.
#[test]
fn battery_dead_nodes_ignore_churn_resurrect() {
    use essat::scenario::spec::{BatterySpec, ChurnSpec, ChurnStep, Scenario, ScenarioSpec};
    use essat::sim::time::SimTime;

    let mut config = cfg(Protocol::NtsSs, 9, 1.0);
    // The root is a function of (seed, topology parameters) only, so it
    // can be read off a scenario-free world before scripting churn.
    let (world, _) = essat::wsn::sim::World::new(config.clone());
    let root = world.topology().closest_to_center();

    // A battery so small that every node depletes at the first sweep,
    // then scripted recoveries for a handful of (non-root) victims.
    let mut spec = ScenarioSpec::named("battery_then_churn");
    spec.battery = Some(BatterySpec {
        capacity_j: 0.02, // ≈ 0.44 s active at the MICA2's 45 mW
        check_period: SimDuration::from_millis(500),
    });
    let victims: Vec<u32> = (0..config.nodes)
        .filter(|&n| n != root.as_u32())
        .take(5)
        .collect();
    assert_eq!(victims.len(), 5);
    spec.churn = Some(ChurnSpec::Scripted(
        victims
            .iter()
            .map(|&node| ChurnStep {
                at: SimTime::from_secs(20),
                node,
                up: true,
            })
            .collect(),
    ));
    config.scenario = Some(Scenario::Spec(spec));

    let r = runner::run_one(&config);
    assert!(
        r.lifetime.deaths.len() >= victims.len(),
        "the tiny battery must deplete the network: {} deaths",
        r.lifetime.deaths.len()
    );
    assert!(
        r.lifetime.first_death.is_some(),
        "first death must be recorded"
    );
    assert_eq!(
        r.lifetime.recoveries, 0,
        "churn resurrect must not revive battery-depleted nodes"
    );
}
