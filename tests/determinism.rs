//! Reproducibility: identical seeds give bit-identical metrics; the
//! multi-run helper derives distinct seeds; and results are stable
//! across the threaded runner.

use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

fn cfg(protocol: Protocol, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(2.0), seed);
    cfg.duration = SimDuration::from_secs(25);
    cfg
}

#[test]
fn identical_seeds_identical_runs_all_protocols() {
    for protocol in [
        Protocol::NtsSs,
        Protocol::StsSs,
        Protocol::DtsSs,
        Protocol::Sync,
        Protocol::Psm,
        Protocol::Span,
    ] {
        let a = runner::run_one(&cfg(protocol, 101));
        let b = runner::run_one(&cfg(protocol, 101));
        assert_eq!(a.events_processed, b.events_processed, "{protocol}");
        assert_eq!(a.reports_sent, b.reports_sent, "{protocol}");
        assert_eq!(a.channel_transmissions, b.channel_transmissions, "{protocol}");
        assert_eq!(a.avg_duty_cycle_pct(), b.avg_duty_cycle_pct(), "{protocol}");
        assert_eq!(a.avg_latency_s(), b.avg_latency_s(), "{protocol}");
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.records, qb.records, "{protocol}: round traces differ");
        }
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.duty_cycle, nb.duty_cycle, "{protocol}");
            assert_eq!(na.energy_j, nb.energy_j, "{protocol}");
        }
    }
}

#[test]
fn threaded_runner_matches_sequential() {
    let base = cfg(Protocol::DtsSs, 200);
    let threaded = runner::run_many(&base, 3);
    for (i, r) in threaded.iter().enumerate() {
        let mut c = base.clone();
        c.seed = base.seed + i as u64;
        let seq = runner::run_one(&c);
        assert_eq!(r.seed, seq.seed);
        assert_eq!(r.events_processed, seq.events_processed);
        assert_eq!(r.avg_duty_cycle_pct(), seq.avg_duty_cycle_pct());
    }
}

#[test]
fn derived_seeds_are_distinct() {
    let rs = runner::run_many(&cfg(Protocol::NtsSs, 300), 3);
    assert_eq!(rs.len(), 3);
    let seeds: Vec<u64> = rs.iter().map(|r| r.seed).collect();
    assert_eq!(seeds, vec![300, 301, 302]);
    // Different seeds — different topologies — different event counts.
    assert!(
        rs[0].events_processed != rs[1].events_processed
            || rs[1].events_processed != rs[2].events_processed
    );
}

#[test]
fn run_summary_aggregates() {
    let s = runner::run_summary(&cfg(Protocol::DtsSs, 400), 3);
    assert_eq!(s.runs, 3);
    assert!(s.duty_mean() > 0.0 && s.duty_mean() < 100.0);
    assert!(s.latency_mean() > 0.0);
    assert!(s.duty_ci90() >= 0.0);
    assert!(s.latency_ci90() >= 0.0);
    assert!(s.delivery.mean() > 0.5);
}
