//! Reproducibility: identical seeds give bit-identical metrics; the
//! multi-run helper derives distinct seeds; results are stable across
//! the threaded runner; and the parallel sweep executor produces
//! byte-identical figure data to the serial path.

use essat::harness::executor::{SweepCell, SweepExecutor};
use essat::harness::figures;
use essat::harness::scale::Scale;
use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

fn cfg(protocol: Protocol, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(2.0), seed);
    cfg.duration = SimDuration::from_secs(25);
    cfg
}

#[test]
fn identical_seeds_identical_runs_all_protocols() {
    for protocol in [
        Protocol::NtsSs,
        Protocol::StsSs,
        Protocol::DtsSs,
        Protocol::Sync,
        Protocol::Psm,
        Protocol::Span,
    ] {
        let a = runner::run_one(&cfg(protocol, 101));
        let b = runner::run_one(&cfg(protocol, 101));
        assert_eq!(a.events_processed, b.events_processed, "{protocol}");
        assert_eq!(a.reports_sent, b.reports_sent, "{protocol}");
        assert_eq!(
            a.channel_transmissions, b.channel_transmissions,
            "{protocol}"
        );
        assert_eq!(a.avg_duty_cycle_pct(), b.avg_duty_cycle_pct(), "{protocol}");
        assert_eq!(a.avg_latency_s(), b.avg_latency_s(), "{protocol}");
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.records, qb.records, "{protocol}: round traces differ");
        }
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.duty_cycle, nb.duty_cycle, "{protocol}");
            assert_eq!(na.energy_j, nb.energy_j, "{protocol}");
        }
    }
}

#[test]
fn threaded_runner_matches_sequential() {
    let base = cfg(Protocol::DtsSs, 200);
    let threaded = runner::run_many(&base, 3);
    for (i, r) in threaded.iter().enumerate() {
        let mut c = base.clone();
        c.seed = base.seed + i as u64;
        let seq = runner::run_one(&c);
        assert_eq!(r.seed, seq.seed);
        assert_eq!(r.events_processed, seq.events_processed);
        assert_eq!(r.avg_duty_cycle_pct(), seq.avg_duty_cycle_pct());
    }
}

#[test]
fn derived_seeds_are_distinct() {
    let rs = runner::run_many(&cfg(Protocol::NtsSs, 300), 3);
    assert_eq!(rs.len(), 3);
    let seeds: Vec<u64> = rs.iter().map(|r| r.seed).collect();
    assert_eq!(seeds, vec![300, 301, 302]);
    // Different seeds — different topologies — different event counts.
    assert!(
        rs[0].events_processed != rs[1].events_processed
            || rs[1].events_processed != rs[2].events_processed
    );
}

/// The work-stealing sweep executor must produce byte-identical figure
/// data to the serial (1-thread) path for a `Scale::Quick` figure: both
/// the rendered table and the CSV must match byte for byte, whatever
/// the thread interleaving.
#[test]
fn parallel_executor_matches_serial_byte_identical() {
    let serial = figures::fig2_deadline(&mut SweepExecutor::with_threads(1), Scale::Quick, 9);
    let parallel = figures::fig2_deadline(&mut SweepExecutor::with_threads(8), Scale::Quick, 9);
    assert_eq!(serial.to_csv().into_bytes(), parallel.to_csv().into_bytes());
    assert_eq!(
        serial.render_table().into_bytes(),
        parallel.render_table().into_bytes()
    );
}

/// Executor cells reproduce exactly what the per-point runner produced,
/// so figures keep their historical values across the refactor.
#[test]
fn executor_cell_matches_run_many() {
    let base = cfg(Protocol::StsSs, 512);
    let via_runner = runner::run_many(&base, 3);
    let via_exec = SweepExecutor::new()
        .run(&[SweepCell::new(base, 3)])
        .remove(0);
    assert_eq!(via_runner.len(), via_exec.len());
    for (a, b) in via_runner.iter().zip(&via_exec) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.avg_duty_cycle_pct(), b.avg_duty_cycle_pct());
        assert_eq!(a.avg_latency_s(), b.avg_latency_s());
        assert_eq!(a.reports_sent, b.reports_sent);
    }
}

/// A scenario-driven sweep (bursty links + churn + diurnal phases) is
/// byte-identical whatever the `--threads` setting: scenario
/// compilation and all scenario randomness derive from the per-run
/// seed, never from execution order.
#[test]
fn scenario_runs_byte_identical_across_thread_counts() {
    use essat::scenario::presets;
    use essat::scenario::spec::Scenario;

    let mk_cells = || {
        let mut cells = Vec::new();
        for (seed, preset) in [(640u64, "bursty_links"), (650, "churn"), (660, "diurnal")] {
            let mut c = cfg(Protocol::DtsSs, seed);
            let spec = presets::by_name(preset, c.duration).expect("known preset");
            c.scenario = Some(Scenario::Spec(spec));
            cells.push(SweepCell::new(c, 2));
        }
        cells
    };
    let serial = SweepExecutor::with_threads(1).run(&mk_cells());
    let parallel = SweepExecutor::with_threads(8).run(&mk_cells());
    for (s_cell, p_cell) in serial.iter().zip(&parallel) {
        for (s, p) in s_cell.iter().zip(p_cell) {
            assert_eq!(s.seed, p.seed);
            assert_eq!(s.events_processed, p.events_processed);
            assert_eq!(s.avg_duty_cycle_pct(), p.avg_duty_cycle_pct());
            assert_eq!(s.avg_latency_s(), p.avg_latency_s());
            assert_eq!(s.delivery_ratio(), p.delivery_ratio());
            assert_eq!(s.lifetime, p.lifetime);
            for (qs, qp) in s.queries.iter().zip(&p.queries) {
                assert_eq!(qs.records, qp.records);
            }
        }
    }
}

/// Record/replay: a compiled scenario's trace round-trips byte-
/// identically, and a run driven by the replayed trace reproduces the
/// live run's metrics exactly.
#[test]
fn scenario_trace_replay_is_exact() {
    use essat::scenario::compile::CompiledScenario;
    use essat::scenario::presets;
    use essat::scenario::spec::Scenario;
    use essat::wsn::sim::World;

    let base = cfg(Protocol::StsSs, 777);
    let mut spec = presets::churn(base.duration);
    spec.link = presets::bursty_links().link;
    let live_cfg = base.clone().with_scenario(Scenario::Spec(spec));

    // Record the compiled stream off the live world…
    let (world, _) = World::new(live_cfg.clone());
    let trace = world.scenario().expect("scenario attached").to_trace();
    // …check the codec round-trips byte-identically…
    let parsed = CompiledScenario::from_trace(&trace).expect("parses");
    assert_eq!(parsed.to_trace(), trace);
    // …and replay it.
    let live = runner::run_one(&live_cfg);
    let replayed = runner::run_one(&base.with_scenario(Scenario::Trace(trace)));
    assert_eq!(live.events_processed, replayed.events_processed);
    assert_eq!(live.avg_duty_cycle_pct(), replayed.avg_duty_cycle_pct());
    assert_eq!(live.lifetime, replayed.lifetime);
}

#[test]
fn run_summary_aggregates() {
    let s = runner::run_summary(&cfg(Protocol::DtsSs, 400), 3);
    assert_eq!(s.runs, 3);
    assert!(s.duty_mean() > 0.0 && s.duty_mean() < 100.0);
    assert!(s.latency_mean() > 0.0);
    assert!(s.duty_ci90() >= 0.0);
    assert!(s.latency_ci90() >= 0.0);
    assert!(s.delivery.mean() > 0.5);
}

/// Sweep-wide reuse must be invisible in the results: a run through a
/// **warmed** worker scratch (recycled event-queue slab, channel buffer
/// pools, action buffers) sharing a [`BuildCache`]d topology/tree/CSR
/// block produces a byte-identical `RunResult::digest()` to fresh
/// construction — including under scenarios (churn revivals, battery
/// deaths) and across protocols interleaved on the same scratch.
#[test]
fn pooled_worlds_and_build_cache_match_fresh_construction() {
    use essat::scenario::presets;
    use essat::scenario::spec::Scenario;
    use essat::wsn::sim::{BuildCache, World, WorldScratch};

    let cache = BuildCache::new();
    let mut scratch = WorldScratch::new();
    let mut configs = Vec::new();
    for protocol in [
        Protocol::DtsSs,
        Protocol::Sync,
        Protocol::Psm,
        Protocol::Span,
    ] {
        // Same seed across protocols: all four share one cached build.
        configs.push(cfg(protocol, 4242));
    }
    let mut churny = cfg(Protocol::StsSs, 4242);
    churny.scenario = Some(Scenario::Spec(
        presets::by_name("churn", churny.duration).unwrap(),
    ));
    configs.push(churny);
    let mut draining = cfg(Protocol::NtsSs, 4242);
    draining.scenario = Some(Scenario::Spec(presets::energy_drain(draining.duration)));
    configs.push(draining);

    // Two passes: the second reuses a scratch warmed by *every* config
    // of the first (cross-protocol contamination would show up here).
    for pass in 0..2 {
        for c in &configs {
            let fresh = runner::run_one(c).digest();
            let pooled =
                World::run_pooled(c, &Protocol::build_policy, Some(&cache), &mut scratch).digest();
            assert_eq!(
                fresh, pooled,
                "pass {pass}: pooled run diverged for {} (seed {})",
                c.protocol, c.seed
            );
        }
    }
    assert_eq!(
        cache.len(),
        1,
        "all configs share one (topology, seed) build-cache entry"
    );
}
