//! Clock-fault injection end to end: drift runs are byte-identical
//! across thread counts and record/replay, the zero-magnitude control
//! is exactly the fault-free run, degradation under desync is graceful,
//! and the adaptive guard time buys missed rounds back at an accounted
//! energy cost.

use essat::harness::executor::{SweepCell, SweepExecutor};
use essat::scenario::compile::CompiledScenario;
use essat::scenario::presets;
use essat::scenario::spec::Scenario;
use essat::sim::time::{SimDuration, SimTime};
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;
use essat::wsn::sim::World;

fn cfg(protocol: Protocol, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(1.0), seed);
    cfg.duration = SimDuration::from_secs(40);
    cfg
}

/// The drift figure's cell shape: the `clock_drift` preset plus a guard
/// time scaled to the injected magnitude.
fn drifting(protocol: Protocol, seed: u64, ppm: u32) -> ExperimentConfig {
    cfg(protocol, seed)
        .with_scenario(Scenario::Spec(presets::clock_drift(ppm)))
        .with_clock_guard(SimDuration::from_millis(1), ppm)
}

/// Drift sweeps are deterministic whatever the `--threads` setting:
/// clock compilation and every wall-clock conversion derive from the
/// per-run seed, never from execution order.
#[test]
fn drift_runs_byte_identical_across_thread_counts() {
    let mk_cells = || {
        let mut cells = Vec::new();
        for ppm in [200u32, 5000] {
            for p in [Protocol::DtsSs, Protocol::Psm, Protocol::Sync] {
                cells.push(SweepCell::new(drifting(p, 900 + ppm as u64, ppm), 2));
            }
        }
        cells
    };
    let serial = SweepExecutor::with_threads(1).run(&mk_cells());
    let parallel = SweepExecutor::with_threads(8).run(&mk_cells());
    for (s_cell, p_cell) in serial.iter().zip(&parallel) {
        for (s, p) in s_cell.iter().zip(p_cell) {
            assert_eq!(s.digest(), p.digest(), "thread count leaked into a run");
        }
    }
}

/// Record/replay: a compiled drift scenario's trace (clock + glitch
/// lines included) round-trips byte-identically, and the replayed run
/// reproduces the live run's digest exactly.
#[test]
fn drift_trace_replay_is_exact() {
    let live_cfg = drifting(Protocol::DtsSs, 777, 1000);
    let (world, _) = World::new(live_cfg.clone());
    let trace = world.scenario().expect("scenario attached").to_trace();
    let parsed = CompiledScenario::from_trace(&trace).expect("trace parses");
    assert_eq!(parsed.to_trace(), trace, "codec must round-trip");
    assert!(parsed.has_clock_faults(), "clock table survives the codec");

    let live = runner::run_one(&live_cfg);
    let replayed = runner::run_one(
        &cfg(Protocol::DtsSs, 777)
            .with_scenario(Scenario::Trace(trace))
            .with_clock_guard(SimDuration::from_millis(1), 1000),
    );
    assert_eq!(live.digest(), replayed.digest());
}

/// The control arm: `clock_drift(0)` compiles to no clock table and a
/// run under it is bit-identical to one with no scenario at all.
#[test]
fn zero_drift_equals_fault_free() {
    let base = cfg(Protocol::StsSs, 321);
    let control = base
        .clone()
        .with_scenario(Scenario::Spec(presets::clock_drift(0)));
    assert_eq!(
        runner::run_one(&base).digest(),
        runner::run_one(&control).digest()
    );
}

/// Graceful degradation, both faces of it. SYNC's fixed global
/// schedule has no adaptive slack: heavy desync costs it delivery and
/// rounds, yet it keeps collecting rather than collapsing. DTS under
/// the adaptive guard holds its delivery — and pays for it in metered
/// guard energy.
#[test]
fn drift_degrades_gracefully() {
    let clean = runner::run_one(&cfg(Protocol::Sync, 42));
    let heavy = runner::run_one(
        &cfg(Protocol::Sync, 42).with_scenario(Scenario::Spec(presets::clock_drift(5000))),
    );
    assert!(
        heavy.delivery_ratio() > 0.1,
        "5000 ppm desync collapsed SYNC entirely: {}",
        heavy.delivery_ratio()
    );
    assert!(
        heavy.delivery_ratio() < clean.delivery_ratio(),
        "desync must cost SYNC delivery ({} vs {})",
        heavy.delivery_ratio(),
        clean.delivery_ratio()
    );
    assert!(
        heavy.missed_round_rate() > clean.missed_round_rate(),
        "desync must cost SYNC rounds ({} vs {})",
        heavy.missed_round_rate(),
        clean.missed_round_rate()
    );
    assert_eq!(clean.guard_wake_ns, 0, "no guard configured on the control");

    let guarded = runner::run_one(&drifting(Protocol::DtsSs, 42, 5000));
    assert!(
        guarded.delivery_ratio() > 0.9,
        "the guard should hold DTS delivery under drift: {}",
        guarded.delivery_ratio()
    );
    assert!(
        guarded.guard_wake_ns > 0,
        "guarded wake-ups must account their early-wake energy"
    );
    assert!(guarded.guard_overhead_s() > 0.0);
}

/// The adaptive guard time is what buys robustness: at the same drift
/// magnitude, a guarded run misses no more rounds than an unguarded one.
#[test]
fn guard_time_reduces_missed_rounds() {
    let unguarded_cfg =
        cfg(Protocol::StsSs, 1313).with_scenario(Scenario::Spec(presets::clock_drift(5000)));
    let guarded_cfg = unguarded_cfg
        .clone()
        .with_clock_guard(SimDuration::from_millis(1), 5000);
    let unguarded = runner::run_one(&unguarded_cfg);
    let guarded = runner::run_one(&guarded_cfg);
    assert!(
        guarded.missed_round_rate() <= unguarded.missed_round_rate() + 0.01,
        "guard must not increase missed rounds ({} vs {})",
        guarded.missed_round_rate(),
        unguarded.missed_round_rate()
    );
    assert!(
        guarded.delivery_ratio() + 0.02 >= unguarded.delivery_ratio(),
        "guard must not cost delivery ({} vs {})",
        guarded.delivery_ratio(),
        unguarded.delivery_ratio()
    );
    assert_eq!(unguarded.guard_wake_ns, 0);
    assert!(guarded.guard_wake_ns > 0);
}

/// Every protocol survives heavy desync at quick scale: the whole
/// catalogue keeps delivering reports under 5000 ppm skew + drift.
#[test]
fn all_protocols_survive_heavy_drift() {
    for protocol in Protocol::all() {
        let r = runner::run_one(&drifting(protocol, 2718, 5000));
        assert!(
            r.delivery_ratio() > 0.1,
            "{protocol}: delivery collapsed under drift: {}",
            r.delivery_ratio()
        );
        assert!(r.reports_sent > 0, "{protocol}: nothing reported");
    }
}

/// A node killed inside the setup slot dies before the measurement
/// window ever opens, so it accrues no per-state time at all. Its duty
/// cycle must report as exactly 0 — not NaN from a 0/0 division (the
/// regression this pins: finalize clamps the `total == 0` case).
#[test]
fn node_dead_before_measurement_window_has_zero_duty() {
    let victim = 5u32;
    let run = runner::run_one(
        &cfg(Protocol::DtsSs, 55).with_node_failure(SimTime::from_millis(100), victim),
    );
    let n = &run.nodes[victim as usize];
    assert_eq!(
        n.duty_cycle, 0.0,
        "dead-before-window node must report zero duty, got {}",
        n.duty_cycle
    );
    // The rest of the network kept running and measuring normally.
    assert!(run
        .nodes
        .iter()
        .enumerate()
        .any(|(i, n)| i != victim as usize && n.duty_cycle > 0.0));
}
