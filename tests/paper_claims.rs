//! Integration tests asserting the paper's qualitative claims at
//! reduced scale. Each test mirrors a figure or a sentence of §5; the
//! full-scale regeneration lives in the `essat-figures` binary and
//! EXPERIMENTS.md.

use essat::net::radio::RadioParams;
use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

fn cfg(protocol: Protocol, workload: WorkloadSpec, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, workload, seed);
    cfg.duration = SimDuration::from_secs(40);
    cfg
}

/// Figure 3's ordering at one rate: ESSAT protocols below PSM; DTS-SS
/// well below SPAN.
#[test]
fn duty_cycle_ordering_matches_fig3() {
    let w = WorkloadSpec::paper(3.0);
    let dts = runner::run_one(&cfg(Protocol::DtsSs, w.clone(), 3)).avg_duty_cycle_pct();
    let sts = runner::run_one(&cfg(Protocol::StsSs, w.clone(), 3)).avg_duty_cycle_pct();
    let nts = runner::run_one(&cfg(Protocol::NtsSs, w.clone(), 3)).avg_duty_cycle_pct();
    let psm = runner::run_one(&cfg(Protocol::Psm, w.clone(), 3)).avg_duty_cycle_pct();
    let span = runner::run_one(&cfg(Protocol::Span, w, 3)).avg_duty_cycle_pct();
    assert!(dts < psm, "DTS {dts} !< PSM {psm}");
    assert!(sts < psm, "STS {sts} !< PSM {psm}");
    assert!(nts < psm, "NTS {nts} !< PSM {psm}");
    assert!(dts < span, "DTS {dts} !< SPAN {span}");
    // The paper's headline band: DTS-SS duty 38–87% lower than SPAN.
    let reduction = (1.0 - dts / span) * 100.0;
    assert!(
        reduction > 30.0,
        "DTS vs SPAN reduction {reduction:.1}% below the paper's band"
    );
}

/// Figure 6's claim: DTS-SS query latencies 36–98% lower than PSM and
/// SYNC.
#[test]
fn latency_reduction_matches_headline() {
    let w = WorkloadSpec::paper(3.0);
    let dts = runner::run_one(&cfg(Protocol::DtsSs, w.clone(), 5)).avg_latency_s();
    let psm = runner::run_one(&cfg(Protocol::Psm, w.clone(), 5)).avg_latency_s();
    let sync = runner::run_one(&cfg(Protocol::Sync, w, 5)).avg_latency_s();
    for (name, base) in [("PSM", psm), ("SYNC", sync)] {
        let reduction = (1.0 - dts / base) * 100.0;
        assert!(
            (30.0..=99.5).contains(&reduction),
            "DTS vs {name}: reduction {reduction:.1}% outside the paper's band (dts={dts}, base={base})"
        );
    }
}

/// Figure 5: NTS-SS duty cycle grows (roughly linearly) with rank;
/// DTS-SS stays flat by comparison.
#[test]
fn rank_profile_matches_fig5() {
    let w = WorkloadSpec::paper(5.0);
    let nts = runner::run_one(&cfg(Protocol::NtsSs, w.clone(), 8));
    let by_rank = nts.duty_by_rank();
    let ranks: Vec<u32> = by_rank.keys().copied().collect();
    assert!(
        ranks.len() >= 3,
        "need a tree with depth, got ranks {ranks:?}"
    );
    let lo = by_rank[ranks.first().unwrap()].mean();
    let hi = by_rank[ranks.last().unwrap()].mean();
    assert!(
        hi > lo * 1.8,
        "NTS duty should grow with rank: rank {} at {lo:.1}%, rank {} at {hi:.1}%",
        ranks.first().unwrap(),
        ranks.last().unwrap()
    );
    // DTS: the top-rank / rank-1 ratio stays far flatter than NTS's.
    let dts = runner::run_one(&cfg(Protocol::DtsSs, w, 8));
    let dby = dts.duty_by_rank();
    let dranks: Vec<u32> = dby.keys().copied().collect();
    let d_mid = dby[&dranks[1]].mean();
    let d_hi = dby[dranks.last().unwrap()].mean();
    let nts_growth = hi / by_rank[&ranks[1]].mean();
    let dts_growth = d_hi / d_mid;
    assert!(
        dts_growth < nts_growth,
        "DTS rank growth {dts_growth:.2} should be flatter than NTS {nts_growth:.2}"
    );
}

/// Figure 2: the deadline trade-off has the documented shape — tiny
/// deadlines cost energy, huge deadlines cost latency.
#[test]
fn sts_deadline_knee_matches_fig2() {
    let seed = 13;
    let run_d = |d_ms: u64| {
        let w = WorkloadSpec::paper(5.0).with_deadline(SimDuration::from_millis(d_ms));
        runner::run_one(&cfg(Protocol::StsSs, w, seed))
    };
    let tight = run_d(20);
    let knee = run_d(120);
    let loose = run_d(800);
    assert!(
        tight.avg_duty_cycle_pct() > knee.avg_duty_cycle_pct(),
        "duty should fall toward the knee: {} vs {}",
        tight.avg_duty_cycle_pct(),
        knee.avg_duty_cycle_pct()
    );
    assert!(
        loose.avg_latency_s() > knee.avg_latency_s() * 2.0,
        "latency should grow past the knee: {} vs {}",
        loose.avg_latency_s(),
        knee.avg_latency_s()
    );
    // Past the knee the duty no longer improves meaningfully (eq. 3).
    assert!(
        loose.avg_duty_cycle_pct() > knee.avg_duty_cycle_pct() * 0.8,
        "duty flat past the knee: {} vs {}",
        loose.avg_duty_cycle_pct(),
        knee.avg_duty_cycle_pct()
    );
}

/// Figure 9: duty cycle rises with the radio's break-even time, and the
/// 40 ms ZebraNet radio pays far more than the MICA2.
#[test]
fn break_even_time_impact_matches_fig9() {
    let w = WorkloadSpec::paper(3.0);
    let seed = 17;
    let duty = |radio: RadioParams| {
        runner::run_one(&cfg(Protocol::DtsSs, w.clone(), seed).with_radio(radio))
            .avg_duty_cycle_pct()
    };
    let instant = duty(RadioParams::instant());
    let mica2 = duty(RadioParams::mica2());
    let zebra = duty(RadioParams::zebranet());
    assert!(
        instant <= mica2 + 0.5,
        "t_BE=0 should be cheapest: {instant} vs {mica2}"
    );
    assert!(
        zebra > mica2 * 1.2,
        "40 ms break-even should cost visibly more: {zebra} vs {mica2}"
    );
}

/// §4.2.3: DTS phase-update overhead stays around/below one bit per
/// data report.
#[test]
fn dts_overhead_below_a_bit_per_report() {
    for rate in [1.0, 3.0] {
        let r = runner::run_one(&cfg(Protocol::DtsSs, WorkloadSpec::paper(rate), 23));
        let bits = r.phase_overhead_bits_per_report();
        assert!(
            bits < 2.0,
            "phase overhead {bits:.2} bits/report too high at {rate} Hz"
        );
        assert!(r.reports_sent > 0);
    }
}

/// Figure 4 regime (many slow queries): ESSAT keeps adapting; SPAN pays
/// its backbone regardless.
#[test]
fn multi_query_adaptation_matches_fig4() {
    let w = WorkloadSpec::paper(0.2).with_queries_per_class(5);
    let dts = runner::run_one(&cfg(Protocol::DtsSs, w.clone(), 29));
    let span = runner::run_one(&cfg(Protocol::Span, w, 29));
    assert!(
        dts.avg_duty_cycle_pct() < span.avg_duty_cycle_pct() * 0.5,
        "at light per-query load DTS {} should be far below SPAN {}",
        dts.avg_duty_cycle_pct(),
        span.avg_duty_cycle_pct()
    );
    // All 15 queries actually produced rounds.
    assert_eq!(dts.queries.len(), 15);
    assert!(dts.queries.iter().all(|q| q.rounds_completed > 0));
}

/// SYNC's duty cycle is pinned by its schedule (the reason the paper
/// omits it from Figures 3 and 4).
#[test]
fn sync_duty_is_fixed_by_schedule() {
    let low = runner::run_one(&cfg(Protocol::Sync, WorkloadSpec::paper(0.5), 31));
    let high = runner::run_one(&cfg(Protocol::Sync, WorkloadSpec::paper(4.0), 31));
    let (a, b) = (low.avg_duty_cycle_pct(), high.avg_duty_cycle_pct());
    assert!(
        (a - b).abs() < 8.0,
        "SYNC duty should be roughly workload-independent: {a} vs {b}"
    );
    assert!(a > 15.0 && a < 35.0, "SYNC duty {a} should sit near 20%");
}

/// Related work (§2): TAG/TinyDB level slotting works under Safe Sleep
/// but cannot beat rank-based STS — a shallow leaf waits out every
/// deeper level's slot before transmitting.
#[test]
fn tag_baseline_functions_and_sts_compares() {
    let w = WorkloadSpec::paper(2.0);
    let tag = runner::run_one(&cfg(Protocol::TagSs, w.clone(), 37));
    let sts = runner::run_one(&cfg(Protocol::StsSs, w, 37));
    assert!(
        tag.delivery_ratio() > 0.9,
        "TAG delivery {}",
        tag.delivery_ratio()
    );
    // Both are static pipelines across the same deadline: latencies land
    // in the same ballpark (within 2x), and both sleep most of the time.
    let ratio = tag.avg_latency_s() / sts.avg_latency_s();
    assert!(
        (0.5..=2.0).contains(&ratio),
        "TAG latency {} vs STS {}",
        tag.avg_latency_s(),
        sts.avg_latency_s()
    );
    assert!(tag.avg_duty_cycle_pct() < 50.0);
    assert!(
        tag.avg_duty_cycle_pct() >= sts.avg_duty_cycle_pct() * 0.8,
        "level slots shouldn't beat rank slots: TAG {} vs STS {}",
        tag.avg_duty_cycle_pct(),
        sts.avg_duty_cycle_pct()
    );
}
