//! Panic isolation in the sweep executor: a policy that panics takes
//! down its own job (with one retry and a structured failure report),
//! not the sweep, and the deterministic event budget turns runaway
//! cells into failures instead of hung sweeps.

use essat::harness::executor::{SweepCell, SweepExecutor};
use essat::net::ids::NodeId;
use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::payload::Payload;
use essat::wsn::protocol::{PolicyEnv, PowerPolicy};

fn cfg(protocol: Protocol, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(1.0), seed);
    cfg.duration = SimDuration::from_secs(20);
    cfg
}

/// An "out-of-tree" factory whose PSM arm is broken: building any PSM
/// policy panics, everything else delegates to the stock catalogue.
fn broken_psm_factory(
    cfg: &ExperimentConfig,
    node: NodeId,
    env: &PolicyEnv<'_>,
) -> Box<dyn PowerPolicy<Payload>> {
    if cfg.protocol == Protocol::Psm {
        panic!("injected: out-of-tree policy construction failed");
    }
    Protocol::build_policy(cfg, node, env)
}

#[test]
fn panicking_policy_yields_failure_report_while_others_complete() {
    let cells = vec![
        SweepCell::new(cfg(Protocol::DtsSs, 7), 2),
        SweepCell::new(cfg(Protocol::Psm, 7), 2),
        SweepCell::new(cfg(Protocol::Sync, 7), 1),
    ];
    let mut exec = SweepExecutor::with_threads(4);
    let out = exec.run_checked_with(&cells, &broken_psm_factory);

    // Healthy cells complete in full…
    assert_eq!(out.results[0].len(), 2);
    assert_eq!(out.results[2].len(), 1);
    assert!(out.results[0].iter().all(|r| r.events_processed > 0));
    // …the broken cell yields structured failures, one per repetition.
    assert!(out.results[1].is_empty());
    assert_eq!(out.failures.len(), 2);
    for f in &out.failures {
        assert_eq!(f.cell, 1);
        assert_eq!(f.protocol, "PSM");
        assert!(f.retried, "a panicking job gets exactly one retry");
        assert!(f.reason.contains("injected"), "reason: {}", f.reason);
    }
    let seeds: Vec<u64> = out.failures.iter().map(|f| f.seed).collect();
    assert_eq!(seeds, vec![7, 8], "failures carry the derived seeds");
    let summary = out.failure_summary().expect("failures present");
    assert!(summary.contains("PSM") && summary.contains("injected"));
}

#[test]
fn clean_sweep_reports_no_failures() {
    let out =
        SweepExecutor::with_threads(2).run_checked(&[SweepCell::new(cfg(Protocol::NtsSs, 31), 2)]);
    assert!(out.failures.is_empty());
    assert!(out.failure_summary().is_none());
    assert_eq!(out.results[0].len(), 2);
}

/// The event budget is deterministic, so exhaustion fails immediately
/// (no retry) with a reason that names the cap.
#[test]
fn event_budget_exhaustion_is_reported() {
    let out = SweepExecutor::with_threads(1)
        .with_event_budget(100)
        .run_checked(&[SweepCell::new(cfg(Protocol::DtsSs, 9), 1)]);
    assert!(out.results[0].is_empty());
    assert_eq!(out.failures.len(), 1);
    let f = &out.failures[0];
    assert!(!f.retried, "budget exhaustion is deterministic — no retry");
    assert!(f.reason.contains("event budget"), "reason: {}", f.reason);
}

/// Budget accounting stays per-event under batch draining. The engine
/// consumes events a wheel bucket at a time, but a budget of N must
/// trip after exactly N dispatches — exhaustion midway through a
/// drained bucket leaves the remainder pending and reports the same
/// structured failure as before batching, at every cap value around
/// bucket-sized dispatch bursts.
#[test]
fn budget_exhaustion_mid_bucket_reports_identically() {
    for budget in [1u64, 97, 100, 101, 128, 1_000] {
        let out = SweepExecutor::with_threads(1)
            .with_event_budget(budget)
            .run_checked(&[SweepCell::new(cfg(Protocol::DtsSs, 9), 1)]);
        assert!(
            out.results[0].is_empty(),
            "budget {budget}: an exhausted run yields no result"
        );
        assert_eq!(out.failures.len(), 1, "budget {budget}");
        let f = &out.failures[0];
        assert!(!f.retried, "budget {budget}: exhaustion is deterministic");
        assert!(
            f.reason.contains(&budget.to_string()),
            "budget {budget}: reason names the cap: {}",
            f.reason
        );
    }
}

/// An ample budget is invisible: the capped path reproduces the
/// uncapped run bit for bit.
#[test]
fn ample_budget_matches_uncapped() {
    let cell = || vec![SweepCell::new(cfg(Protocol::Sync, 11), 1)];
    let uncapped = SweepExecutor::with_threads(1).run(&cell());
    let capped = SweepExecutor::with_threads(1)
        .with_event_budget(u64::MAX)
        .run_checked(&cell());
    assert!(capped.failures.is_empty());
    assert_eq!(uncapped[0][0].digest(), capped.results[0][0].digest());
}

/// The strict entry point keeps its all-or-nothing contract: any
/// failure aborts with the aggregated report.
#[test]
#[should_panic(expected = "event budget")]
fn strict_run_panics_on_failures() {
    SweepExecutor::with_threads(1)
        .with_event_budget(100)
        .run(&[SweepCell::new(cfg(Protocol::DtsSs, 9), 1)]);
}
