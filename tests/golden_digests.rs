//! Equivalence guard for the simulator's observable behaviour: every
//! protocol's `Scale::Quick` metrics must digest to exactly the values
//! recorded in the golden file. A mismatch means a change moved event
//! ordering, an RNG stream, or a metric — a bug, not a baseline to
//! re-record.
//!
//! The golden file carries a `digest-version:` header naming the digest
//! schema it was recorded under (files without one are version 1).
//! Intentional digest migrations bump
//! [`essat::wsn::metrics::RunResult::DIGEST_VERSION`], regenerate the
//! goldens, and keep the previous version's file committed as
//! `quick_digests_v<N>.txt` so the migration history stays auditable.
//! Version 2 retired stale-event dispatches (true timer cancellation):
//! only the hashed `events_processed` / `peak_queue_depth` counters
//! moved; every simulation-level metric is byte-identical to version 1.
//! Version 3 grew the preimage with the self-healing counters
//! (repairs, re-parent latency, orphan node-time, re-dispatches) and
//! the partition-episode fields (recovered-at, time-in-partition) —
//! all zero on these fault-free runs; the underlying event stream is
//! unchanged (`robustness::repair_is_invisible_on_fault_free_runs`
//! pins that with a full enabled-vs-disabled digest comparison).
//!
//! Regenerate (only for *intentional* behaviour changes) with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_digests -- --nocapture
//! ```

use essat::harness::scale::Scale;
use essat::wsn::config::{Protocol, WorkloadSpec};
use essat::wsn::metrics::RunResult;
use essat::wsn::runner;

const GOLDEN_PATH: &str = "tests/golden/quick_digests.txt";
const GOLDEN: &str = include_str!("golden/quick_digests.txt");
/// The previous digest schemas' goldens, retained for auditability.
const GOLDEN_V1: &str = include_str!("golden/quick_digests_v1.txt");
const GOLDEN_V2: &str = include_str!("golden/quick_digests_v2.txt");
const SEED: u64 = 2025;

/// All eight protocols, in the order the golden file records them.
const ALL: [Protocol; 8] = [
    Protocol::DtsSs,
    Protocol::StsSs,
    Protocol::NtsSs,
    Protocol::TagSs,
    Protocol::Sync,
    Protocol::Psm,
    Protocol::Span,
    Protocol::AlwaysOn,
];

fn current_digests() -> Vec<(Protocol, String)> {
    ALL.iter()
        .map(|&p| {
            let cfg = Scale::Quick.config(p, WorkloadSpec::paper(1.0), SEED);
            (p, runner::run_one(&cfg).digest())
        })
        .collect()
}

/// Parses a golden file into its digest-schema version and
/// `(protocol, digest)` entries. Files predating the version header
/// are version 1.
fn parse_goldens(raw: &str) -> (u32, Vec<(String, String)>) {
    let mut version = 1;
    let mut entries = Vec::new();
    for l in raw.lines() {
        let l = l.trim();
        if l.is_empty() {
            continue;
        }
        if let Some(rest) = l.strip_prefix('#') {
            if let Some(v) = rest.trim().strip_prefix("digest-version:") {
                version = v.trim().parse().expect("numeric digest-version header");
            }
            continue;
        }
        let (name, digest) = l.rsplit_once(' ').expect("`<protocol> <digest>` lines");
        entries.push((name.to_string(), digest.to_string()));
    }
    (version, entries)
}

#[test]
fn quick_scale_digests_match_goldens() {
    let current = current_digests();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        let mut out = format!(
            "# digest-version: {}\n\
             # Per-protocol RunResult::digest() at Scale::Quick, seed 2025.\n\
             # Every run must reproduce these byte-identically; regenerate\n\
             # (UPDATE_GOLDENS=1) only for intentional behaviour changes,\n\
             # and say why in the commit that rewrites this file. When the\n\
             # digest schema itself changes, bump RunResult::DIGEST_VERSION\n\
             # and keep the old file as quick_digests_v<N>.txt.\n",
            RunResult::DIGEST_VERSION
        );
        for (p, d) in &current {
            out.push_str(&format!("{p} {d}\n"));
        }
        std::fs::write(GOLDEN_PATH, out).expect("write goldens");
        eprintln!("goldens updated at {GOLDEN_PATH}");
        return;
    }
    let (version, golden) = parse_goldens(GOLDEN);
    assert_eq!(
        version,
        RunResult::DIGEST_VERSION,
        "golden file {GOLDEN_PATH} is digest-version {version} but this build produces \
         digest-version {}. If the schema change is intentional, regenerate with\n\
         \n    UPDATE_GOLDENS=1 cargo test --test golden_digests -- --nocapture\n\
         \nand keep the old file committed as quick_digests_v{version}.txt",
        RunResult::DIGEST_VERSION
    );
    assert_eq!(golden.len(), ALL.len(), "golden file covers all protocols");
    for ((p, current), (name, expected)) in current.iter().zip(&golden) {
        assert_eq!(&p.to_string(), name, "golden file order matches ALL");
        assert_eq!(
            current, expected,
            "{p}: Quick-scale metrics diverged from the golden digest \
             (digest-version {version}). If this divergence is an intentional \
             behaviour change, regenerate with\n\
             \n    UPDATE_GOLDENS=1 cargo test --test golden_digests -- --nocapture\n\
             \nand explain why in the commit; otherwise it is a regression"
        );
    }
}

/// The retained previous-version goldens stay parseable and complete,
/// so the migration trail cannot silently rot.
#[test]
fn retained_v1_goldens_parse() {
    for (raw, version) in [(GOLDEN_V1, 1), (GOLDEN_V2, 2)] {
        let (parsed, entries) = parse_goldens(raw);
        assert_eq!(
            parsed, version,
            "quick_digests_v{version}.txt records digest-version {version}"
        );
        assert_eq!(
            entries.len(),
            ALL.len(),
            "v{version} file covers all protocols"
        );
        for ((name, digest), p) in entries.iter().zip(&ALL) {
            assert_eq!(name, &p.to_string(), "v{version} file order matches ALL");
            assert_eq!(digest.len(), 16, "v{version} digests are 16 hex chars");
            assert!(digest.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }
}
