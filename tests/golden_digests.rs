//! Equivalence guard for the layered node-stack refactor: every
//! protocol's `Scale::Quick` metrics must digest to exactly the values
//! recorded before the `World` monolith was decomposed into the
//! `PowerPolicy` stack. A mismatch means the refactor changed
//! observable behaviour — event ordering, an RNG stream, a metric — and
//! is a bug, not a baseline to re-record.
//!
//! Regenerate (only for *intentional* behaviour changes) with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_digests -- --nocapture
//! ```

use essat::harness::scale::Scale;
use essat::wsn::config::{Protocol, WorkloadSpec};
use essat::wsn::runner;

const GOLDEN_PATH: &str = "tests/golden/quick_digests.txt";
const GOLDEN: &str = include_str!("golden/quick_digests.txt");
const SEED: u64 = 2025;

/// All eight protocols, in the order the golden file records them.
const ALL: [Protocol; 8] = [
    Protocol::DtsSs,
    Protocol::StsSs,
    Protocol::NtsSs,
    Protocol::TagSs,
    Protocol::Sync,
    Protocol::Psm,
    Protocol::Span,
    Protocol::AlwaysOn,
];

fn current_digests() -> Vec<(Protocol, String)> {
    ALL.iter()
        .map(|&p| {
            let cfg = Scale::Quick.config(p, WorkloadSpec::paper(1.0), SEED);
            (p, runner::run_one(&cfg).digest())
        })
        .collect()
}

#[test]
fn quick_scale_digests_match_pre_refactor_goldens() {
    let current = current_digests();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        let mut out = String::from(
            "# Per-protocol RunResult::digest() at Scale::Quick, seed 2025.\n\
             # Every run must reproduce these byte-identically; regenerate\n\
             # (UPDATE_GOLDENS=1) only for intentional behaviour changes,\n\
             # and say why in the commit that rewrites this file.\n",
        );
        for (p, d) in &current {
            out.push_str(&format!("{p} {d}\n"));
        }
        std::fs::write(GOLDEN_PATH, out).expect("write goldens");
        eprintln!("goldens updated at {GOLDEN_PATH}");
        return;
    }
    let golden: Vec<(String, String)> = GOLDEN
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (name, digest) = l.rsplit_once(' ').expect("`<protocol> <digest>` lines");
            (name.to_string(), digest.to_string())
        })
        .collect();
    assert_eq!(golden.len(), ALL.len(), "golden file covers all protocols");
    for ((p, current), (name, expected)) in current.iter().zip(&golden) {
        assert_eq!(&p.to_string(), name, "golden file order matches ALL");
        assert_eq!(
            current, expected,
            "{p}: Quick-scale metrics diverged from the pre-refactor golden digest"
        );
    }
}
