//! The simulation sanitizer (`--features sanitize`) riding along on a
//! representative grid: every protocol under every scenario preset plus
//! clock drift, at reduced quick scale. A single invariant violation —
//! non-monotone time or energy, a frame delivered to a dead node, a
//! mirror out of sync with the radio, a broken routing tree, an
//! unsettled energy total — panics the run and fails this test.

#![cfg(feature = "sanitize")]

use essat::scenario::presets;
use essat::scenario::spec::Scenario;
use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

fn cfg(protocol: Protocol, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(1.0), seed);
    cfg.duration = SimDuration::from_secs(20);
    cfg
}

#[test]
fn sanitizer_clean_across_protocols_and_presets() {
    for protocol in Protocol::all() {
        // Fault-free control…
        let r = runner::run_one(&cfg(protocol, 1000));
        assert!(r.events_processed > 0, "{protocol}");
        // …every scenario preset (churn revives nodes, energy_drain
        // kills them, bursty/diurnal stress links and traffic)…
        for preset in presets::NAMES {
            let base = cfg(protocol, 2000);
            let spec = presets::by_name(preset, base.duration).expect("known preset");
            let r = runner::run_one(&base.with_scenario(Scenario::Spec(spec)));
            assert!(r.events_processed > 0, "{protocol} under {preset}");
        }
        // …and clock drift with the adaptive guard.
        let drifted = cfg(protocol, 3000)
            .with_scenario(Scenario::Spec(presets::clock_drift(5000)))
            .with_clock_guard(SimDuration::from_millis(1), 5000);
        let r = runner::run_one(&drifted);
        assert!(r.events_processed > 0, "{protocol} under drift");
    }
}

#[test]
fn sanitizer_clean_under_loss_and_node_failure() {
    use essat::sim::time::SimTime;
    let r = runner::run_one(&cfg(Protocol::DtsSs, 77).with_drop_probability(0.3));
    assert!(r.events_processed > 0);
    let r = runner::run_one(&cfg(Protocol::StsSs, 78).with_node_failure(SimTime::from_secs(8), 1));
    assert!(r.events_processed > 0);
}
