//! # essat — facade crate for the ESSAT paper reproduction
//!
//! Re-exports the whole workspace behind one dependency, mirroring how a
//! downstream user would consume the library:
//!
//! * [`sim`] — deterministic discrete-event engine, clock, RNG, statistics.
//! * [`net`] — wireless substrate: geometry, radio power model, unit-disk
//!   channel, CSMA/CA MAC.
//! * [`query`] — periodic query model, in-network aggregation, routing
//!   trees.
//! * [`core`] — the paper's contribution: the Safe Sleep scheduler and the
//!   NTS / STS / DTS traffic shapers plus protocol maintenance.
//! * [`baselines`] — SYNC, PSM, and SPAN comparison protocols.
//! * [`scenario`] — dynamic environments: Gilbert–Elliott bursty links,
//!   battery depletion, node churn, traffic phases, and deterministic
//!   record/replay of scenario event streams.
//! * [`wsn`] — the integrated node stack, simulator, metrics, and
//!   experiment runner.
//! * [`harness`] — ready-made experiments regenerating every figure of the
//!   paper.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system map.

#![forbid(unsafe_code)]

pub use essat_baselines as baselines;
pub use essat_core as core;
pub use essat_harness as harness;
pub use essat_net as net;
pub use essat_obs as obs;
pub use essat_query as query;
pub use essat_scenario as scenario;
pub use essat_sim as sim;
pub use essat_wsn as wsn;
