//! Diurnal traffic: the `diurnal` preset alternates burst (full-rate)
//! and quiet (20%-rate) phases over the run, and every node follows the
//! phase schedule with zero signalling — round activity is a pure
//! function of the compiled scenario, so sources, relays, and the root
//! all agree on which rounds run.
//!
//! The run shows the two things that matter: completed rounds track the
//! phase schedule, and quiet phases *save* energy (the duty cycle under
//! the diurnal scenario is below the steady full-rate run).
//!
//! ```text
//! cargo run --release --example diurnal_burst
//! ```

use essat::scenario::presets;
use essat::scenario::spec::Scenario;
use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

fn main() {
    let seed = 7;
    for protocol in [Protocol::DtsSs, Protocol::NtsSs] {
        let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(1.0), seed);
        cfg.duration = SimDuration::from_secs(48);
        let steady = runner::run_one(&cfg);
        let spec = presets::diurnal(cfg.duration);
        let segments: Vec<(f64, f64)> = spec
            .traffic
            .iter()
            .map(|p| (p.from.as_secs_f64(), p.rate_scale))
            .collect();
        let diurnal = runner::run_one(&cfg.clone().with_scenario(Scenario::Spec(spec)));

        println!("== {protocol} under the `diurnal` preset (48 s, 8 s segments)");
        // Completed rounds at the root per phase segment, from Q1's
        // per-round trace.
        let q = &diurnal.queries[0];
        for (i, &(from, scale)) in segments.iter().enumerate() {
            let to = segments
                .get(i + 1)
                .map(|&(t, _)| t)
                .unwrap_or(diurnal.measured_until.as_secs_f64());
            let rounds = q
                .records
                .iter()
                .filter(|r| {
                    let t = r.at.as_secs_f64();
                    t >= from && t < to
                })
                .count();
            let kind = if scale >= 1.0 { "burst" } else { "quiet" };
            println!(
                "  [{from:5.1} s .. {to:5.1} s) {kind} (x{scale:.1}): {rounds:3} rounds completed"
            );
        }
        println!(
            "  duty cycle: steady {:.2}%  diurnal {:.2}%  (quiet phases save energy)",
            steady.avg_duty_cycle_pct(),
            diurnal.avg_duty_cycle_pct()
        );
        println!(
            "  delivery:   steady {:.1}%  diurnal {:.1}%",
            100.0 * steady.delivery_ratio(),
            100.0 * diurnal.delivery_ratio()
        );
        println!();
        assert!(
            diurnal.avg_duty_cycle_pct() <= steady.avg_duty_cycle_pct() * 1.05,
            "quiet phases must not cost energy"
        );
    }
}
