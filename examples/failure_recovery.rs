//! §4.3 robustness: node failure, detection, and tree repair.
//!
//! A relay node is killed mid-run. Its children's transmissions start
//! failing, the failure detectors cross their thresholds, the routing
//! layer re-parents the orphans, STS recomputes rank schedules / DTS
//! resynchronises through one phase update — and delivery recovers
//! without operator intervention.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use essat::net::ids::NodeId;
use essat::net::topology::Topology;
use essat::query::tree::RoutingTree;
use essat::sim::rng::SimRng;
use essat::sim::time::{SimDuration, SimTime};
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

fn main() {
    let seed = 5;
    // Rebuild the same topology the run will use, to pick a meaningful
    // victim: a rank>=1 relay with children.
    let master = SimRng::seed_from_u64(seed);
    let mut topo_rng = master.derive(1);
    let base = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), seed);
    let topo = Topology::random(
        base.nodes,
        essat::net::geometry::Area::new(base.area_side, base.area_side),
        base.range,
        &mut topo_rng,
    );
    let root = topo.closest_to_center();
    let tree = RoutingTree::build(&topo, root, Some(base.tree_radius));
    let victim = tree
        .members()
        .iter()
        .copied()
        .filter(|&m| m != root && tree.rank(m) >= 1 && !tree.children(m).is_empty())
        .max_by_key(|&m| tree.children(m).len())
        .expect("a relay exists");
    println!(
        "victim: {} (rank {}, {} children, parent {:?})",
        victim,
        tree.rank(victim),
        tree.children(victim).len(),
        tree.parent(victim),
    );

    let fail_at = SimTime::from_secs(30);
    for protocol in [Protocol::DtsSs, Protocol::StsSs, Protocol::NtsSs] {
        let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(1.0), seed);
        cfg.duration = SimDuration::from_secs(90);
        let healthy = runner::run_one(&cfg);
        let wounded = runner::run_one(&cfg.clone().with_node_failure(fail_at, victim.as_u32()));

        // Delivery per 30 s window of the run, from the per-round trace
        // of Q1 (before / during-detection / after-recovery).
        let q = &wounded.queries[0];
        let windows = [(0u64, 30u64), (30, 60), (60, 90)];
        let mut per_window = Vec::new();
        for (a, b) in windows {
            let (lo, hi) = (SimTime::from_secs(a), SimTime::from_secs(b));
            let rs: Vec<_> = q
                .records
                .iter()
                .filter(|r| r.at >= lo && r.at < hi)
                .collect();
            let readings: u64 = rs.iter().map(|r| r.readings).sum();
            let avg = if rs.is_empty() {
                0.0
            } else {
                readings as f64 / rs.len() as f64
            };
            per_window.push(avg);
        }
        println!(
            "\n== {} (failure at t=30s)\n  healthy delivery {:.3}; wounded delivery {:.3}\n  mean readings/round: 0-30s {:.1} | 30-60s {:.1} | 60-90s {:.1}",
            protocol.label(),
            healthy.delivery_ratio(),
            wounded.delivery_ratio(),
            per_window[0],
            per_window[1],
            per_window[2],
        );
        let recovered = per_window[2] >= per_window[0] - 2.0;
        println!(
            "  verdict: {}",
            if recovered {
                "recovered — orphans re-parented, reporting resumed"
            } else {
                "NOT fully recovered"
            }
        );
    }
    println!();
    println!("note: one reading per round is permanently lost with the victim —");
    println!("its own sensor is gone; the recovery criterion allows for that.");
    let _ = NodeId::new(0);
}
