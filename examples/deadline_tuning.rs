//! The STS tuning problem and DTS's answer (paper §4.2.2–4.2.3,
//! Figure 2).
//!
//! STS-SS must be configured with a query deadline `D`; the local
//! deadline `l = D/M` then trades energy against latency, with the sweet
//! spot at `l ≈ T_agg` — a quantity that depends on topology, workload,
//! and MAC contention, so it is "difficult to estimate accurately". This
//! example sweeps `D` to expose the trade-off, then shows DTS-SS landing
//! near the knee with no tuning at all.
//!
//! ```text
//! cargo run --release --example deadline_tuning
//! ```

use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

fn main() {
    let seed = 31;
    let base_rate = 5.0;
    println!("STS-SS deadline sweep (base rate {base_rate} Hz):");
    println!("{:>10}  {:>10}  {:>10}", "D (s)", "duty (%)", "latency (s)");
    let mut best: Option<(f64, f64, f64)> = None;
    for d in [0.02, 0.05, 0.08, 0.12, 0.2, 0.4, 0.8] {
        let workload = WorkloadSpec::paper(base_rate).with_deadline(SimDuration::from_secs_f64(d));
        let mut cfg = ExperimentConfig::quick(Protocol::StsSs, workload, seed);
        cfg.duration = SimDuration::from_secs(40);
        let r = runner::run_one(&cfg);
        let duty = r.avg_duty_cycle_pct();
        let lat = r.avg_latency_s();
        println!("{d:>10.2}  {duty:>10.2}  {lat:>10.4}");
        // Knee heuristic: lowest duty+normalized-latency score.
        let score = duty + lat * 25.0;
        if best.map(|(s, _, _)| score < s).unwrap_or(true) {
            best = Some((score, d, duty));
        }
    }
    let (_, best_d, best_duty) = best.expect("swept");
    println!("\nbest hand-tuned STS deadline ≈ {best_d} s (duty {best_duty:.2}%)");

    let mut cfg = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(base_rate), seed);
    cfg.duration = SimDuration::from_secs(40);
    let dts = runner::run_one(&cfg);
    println!(
        "DTS-SS, no tuning:            duty {:.2}%, latency {:.4} s",
        dts.avg_duty_cycle_pct(),
        dts.avg_latency_s()
    );
    println!();
    println!("DTS-SS self-tunes to the observed multi-hop delay (Release-Guard");
    println!("phases), sparing the deployment the deadline sweep entirely.");
}
