//! Observability: trace one run's per-node timeline and time series,
//! and prove the probes leave the simulation untouched.
//!
//! ```text
//! cargo run --release --example trace
//! ```
//!
//! Writes `trace_example.json` (Chrome/Perfetto trace-event JSON —
//! open it at <https://ui.perfetto.dev>) and
//! `trace_example_samples.csv` (per-node energy, duty cycle, queue
//! depth, and tree membership every 5 s of simulated time).

use essat::obs::sample::TimeSeriesSampler;
use essat::obs::trace::TimelineTracer;
use essat::obs::{perfetto, Fanout};
use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner::{run_one, run_probed};

fn main() {
    let mut cfg = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(2.0), 42);
    cfg.duration = SimDuration::from_secs(30);

    // The same run twice: bare, then with both probes attached.
    let baseline = run_one(&cfg);
    let probe = Fanout(
        TimelineTracer::new(),
        TimeSeriesSampler::new(SimDuration::from_secs(5)),
    );
    let (probed, Fanout(tracer, sampler)) = run_probed(&cfg, probe);

    // Probes observe through read-only seams: the digest covers every
    // metric bit-for-bit, so equality means the run was undisturbed.
    assert_eq!(
        baseline.digest(),
        probed.digest(),
        "probes must not perturb the simulation"
    );

    let doc = tracer.to_perfetto_json();
    let events = perfetto::validate(&doc).expect("emitted trace validates");
    std::fs::write("trace_example.json", &doc).expect("write trace");
    std::fs::write("trace_example_samples.csv", sampler.to_csv()).expect("write samples");

    println!(
        "traced {} raw events into {} Perfetto events (trace_example.json)",
        tracer.events().len(),
        events
    );
    println!(
        "sampled {} rows at 5 s cadence (trace_example_samples.csv)",
        sampler.rows().len()
    );
    println!(
        "digest check: bare {} == probed {}",
        baseline.digest(),
        probed.digest()
    );
}
