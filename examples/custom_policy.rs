//! A power-management policy defined *outside* the workspace crates,
//! plugged into the simulator through the policy-factory seam.
//!
//! `NaiveDutyCycle` is deliberately simple — a fixed 30%-duty schedule
//! that knows nothing about application timing: wake at every window
//! start, sleep at its end, release reports immediately. It implements
//! [`PowerPolicy`] right here in the example and reaches the executor
//! via [`World::run_with`]; no workspace crate mentions it, which is
//! the point: adding a protocol no longer touches the simulator.
//!
//! The run compares it against DTS-SS under the `steady` scenario
//! preset and prints the gap the paper predicts: a timing-oblivious
//! duty cycle pays for its fixed schedule in both energy (its duty
//! floor) and latency (reports wait out sleep windows).
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use essat::core::policy::{NodeView, PolicyAction, PolicyTimer, PowerPolicy, SleepTrigger};
use essat::core::shaper::{Release, TreeInfo};
use essat::query::model::Query;
use essat::scenario::presets;
use essat::scenario::spec::Scenario;
use essat::sim::time::{SimDuration, SimTime};
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::payload::Payload;
use essat::wsn::runner;
use essat::wsn::sim::World;

/// The example's own schedule-edge timer: out-of-tree policies get
/// private timers via `PolicyTimer::Custom` (`chain: true` opts into
/// the churn-recovery generation guard, like SYNC edges).
const EDGE: PolicyTimer = PolicyTimer::Custom {
    key: 0,
    chain: true,
};

/// A fixed 30%-duty schedule, ignorant of application timing.
#[derive(Debug)]
struct NaiveDutyCycle {
    period: SimDuration,
    active: SimDuration,
    run_end: SimTime,
}

impl NaiveDutyCycle {
    fn new(run_end: SimTime) -> Self {
        NaiveDutyCycle {
            period: SimDuration::from_millis(200),
            active: SimDuration::from_millis(60),
            run_end,
        }
    }

    fn window_start(&self, t: SimTime) -> SimTime {
        SimTime::from_nanos((t.as_nanos() / self.period.as_nanos()) * self.period.as_nanos())
    }

    fn in_active_window(&self, t: SimTime) -> bool {
        t - self.window_start(t) < self.active
    }

    /// The next schedule edge strictly after `t`.
    fn next_edge(&self, t: SimTime) -> SimTime {
        if self.in_active_window(t) {
            self.window_start(t) + self.active
        } else {
            self.window_start(t) + self.period
        }
    }
}

impl PowerPolicy<Payload> for NaiveDutyCycle {
    fn name(&self) -> &'static str {
        "NAIVE-30"
    }

    fn collection_deadline(&self, q: &Query, k: u64, tree: &TreeInfo<'_>) -> SimTime {
        // One schedule period of grace per subtree rank.
        q.round_start(k) + self.period * (tree.own_rank as u64 + 1) + SimDuration::from_millis(50)
    }

    fn plan_release(
        &mut self,
        _q: &Query,
        _k: u64,
        ready_at: SimTime,
        _tree: &TreeInfo<'_>,
    ) -> Release {
        Release {
            send_at: ready_at,
            piggyback: None,
        }
    }

    fn sleep_decision(
        &mut self,
        trigger: SleepTrigger,
        view: &NodeView,
        out: &mut Vec<PolicyAction<Payload>>,
    ) {
        // Only at protocol-agnostic boundaries; mid-window quiesce
        // points never put this node to sleep early.
        if trigger != SleepTrigger::Boundary {
            return;
        }
        if !view.may_sleep || view.dead || !view.radio_active || !view.mac_can_suspend {
            return;
        }
        if !self.in_active_window(view.now) {
            out.push(PolicyAction::Suspend);
        }
    }

    fn initial_actions(&mut self, out: &mut Vec<PolicyAction<Payload>>) {
        out.push(PolicyAction::SetTimer {
            timer: EDGE,
            at: self.next_edge(SimTime::ZERO),
        });
    }

    fn on_timer(
        &mut self,
        timer: PolicyTimer,
        view: &NodeView,
        out: &mut Vec<PolicyAction<Payload>>,
    ) {
        if timer != EDGE {
            return;
        }
        if self.in_active_window(view.now) {
            out.push(PolicyAction::WakeRadio);
        } else {
            self.sleep_decision(SleepTrigger::Boundary, view, out);
        }
        let next = self.next_edge(view.now);
        if next < self.run_end {
            out.push(PolicyAction::SetTimer {
                timer: EDGE,
                at: next,
            });
        }
    }

    fn on_revive(&mut self, now: SimTime, out: &mut Vec<PolicyAction<Payload>>) {
        out.push(PolicyAction::SetTimer {
            timer: EDGE,
            at: self.next_edge(now),
        });
    }
}

fn main() {
    let seed = 11;
    let mut cfg = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), seed);
    cfg.duration = SimDuration::from_secs(30);
    // The `steady` preset: the static paper environment, expressed as a
    // scenario (a no-op spec — the clean baseline for plugin runs).
    let cfg = cfg.with_scenario(Scenario::Spec(presets::steady()));

    // The configured protocol, through the default factory…
    let dts = runner::run_one(&cfg);
    // …and the out-of-tree policy, through the same executor via the
    // factory seam. The configured protocol is simply ignored: every
    // node gets the example's own policy.
    let naive = World::run_with(&cfg, &|cfg, _node, _env| {
        Box::new(NaiveDutyCycle::new(SimTime::ZERO + cfg.duration))
    });

    println!("== custom_policy — plugin seam under the `steady` preset (30 s, quick scale)");
    println!(
        "  {:>8}: duty {:5.2}%  latency {:6.1} ms  delivery {:5.1}%",
        "DTS-SS",
        dts.avg_duty_cycle_pct(),
        dts.avg_latency_s() * 1e3,
        dts.delivery_ratio() * 100.0
    );
    println!(
        "  {:>8}: duty {:5.2}%  latency {:6.1} ms  delivery {:5.1}%",
        "NAIVE-30",
        naive.avg_duty_cycle_pct(),
        naive.avg_latency_s() * 1e3,
        naive.delivery_ratio() * 100.0
    );
    println!(
        "  -> timing semantics beat the naive schedule on energy ({:.2}% vs {:.2}% duty)",
        dts.avg_duty_cycle_pct(),
        naive.avg_duty_cycle_pct()
    );
    assert!(
        dts.avg_duty_cycle_pct() < naive.avg_duty_cycle_pct(),
        "DTS-SS should sleep more than a 30% fixed schedule"
    );
    assert!(
        naive.delivery_ratio() > 0.5,
        "the plugin policy must still deliver most readings"
    );
}
