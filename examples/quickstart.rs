//! Quickstart: run one ESSAT protocol against one baseline and print
//! the paper's two headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

fn main() {
    // Three periodic queries (rate ratio 6:3:2, base 2 Hz) over a
    // 40-node network — a smaller cousin of the paper's §5 setup.
    let workload = WorkloadSpec::paper(2.0);

    println!("protocol   duty-cycle   latency    delivery   reports");
    println!("-----------------------------------------------------");
    for protocol in [Protocol::DtsSs, Protocol::Span] {
        let mut cfg = ExperimentConfig::quick(protocol, workload.clone(), 42);
        cfg.duration = SimDuration::from_secs(60);
        let result = runner::run_one(&cfg);
        println!(
            "{:<10} {:>8.1}%  {:>8.4}s  {:>8.2}   {:>7}",
            protocol.label(),
            result.avg_duty_cycle_pct(),
            result.avg_latency_s(),
            result.delivery_ratio(),
            result.reports_sent,
        );
    }
    println!();
    println!("DTS-SS shapes traffic to the application's period and phase, so");
    println!("nodes sleep between rounds and wake just in time; SPAN keeps a");
    println!("routing backbone powered continuously.");
}
