//! Fire-monitoring scenario from the paper's introduction: "while the
//! workload in a fire monitoring system may be moderate during normal
//! conditions, it may increase sharply after a wild fire is detected."
//!
//! We run DTS-SS twice — normal conditions (one query per class at a
//! 0.2 Hz base rate) and crisis conditions (six queries per class at a
//! 2 Hz base rate) — and show that the *same protocol with no retuning*
//! scales its duty cycle with the workload, which is exactly the
//! adaptivity argument of the paper's Figures 3 and 4. A fixed-schedule
//! protocol (SYNC) burns the same energy regardless and falls behind on
//! latency when the workload surges.
//!
//! ```text
//! cargo run --release --example fire_monitoring
//! ```

use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

struct Phase {
    name: &'static str,
    workload: WorkloadSpec,
}

fn main() {
    let phases = [
        Phase {
            name: "normal (3 queries, base 0.2 Hz)",
            workload: WorkloadSpec::paper(0.2),
        },
        Phase {
            name: "fire!  (18 queries, base 2 Hz)",
            workload: WorkloadSpec::paper(2.0).with_queries_per_class(6),
        },
    ];

    for protocol in [Protocol::DtsSs, Protocol::Sync] {
        println!("== {}", protocol.label());
        for phase in &phases {
            let mut cfg = ExperimentConfig::quick(protocol, phase.workload.clone(), 99);
            cfg.duration = SimDuration::from_secs(60);
            let r = runner::run_one(&cfg);
            println!(
                "  {:<34} duty {:>5.1}%   latency {:>7.4}s   delivery {:>4.2}",
                phase.name,
                r.avg_duty_cycle_pct(),
                r.avg_latency_s(),
                r.delivery_ratio(),
            );
        }
        println!();
    }
    println!("DTS-SS spends energy proportional to the workload — near-zero duty");
    println!("while quiet, scaling up only when the fire-fighting queries arrive.");
    println!("SYNC pays its fixed 20% duty cycle around the clock either way.");
}
