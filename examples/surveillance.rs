//! Surveillance scenario from the paper's introduction: "a surveillance
//! application may require the network to report all suspicious events
//! within a few seconds in order to ensure timely response to
//! intrusions."
//!
//! This example registers a fast intrusion-detection query (MAX over all
//! sensors, 2 Hz) alongside slower ambient-monitoring queries, runs every
//! power-management protocol, and checks which ones keep the
//! intrusion query inside a 1-second reporting deadline — and at what
//! energy price.
//!
//! ```text
//! cargo run --release --example surveillance
//! ```

use essat::sim::time::SimDuration;
use essat::wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat::wsn::runner;

fn main() {
    let deadline_s = 1.0;
    // Q1 at 2 Hz is the intrusion query; Q2/Q3 (1 Hz, 0.67 Hz) are the
    // ambient monitoring load, per the paper's 6:3:2 class ratio.
    let workload = WorkloadSpec::paper(2.0);

    println!("surveillance: intrusion reports must arrive within {deadline_s:.1} s");
    println!();
    println!("protocol    duty     mean lat   worst lat   in-deadline  verdict");
    println!("-----------------------------------------------------------------");
    for protocol in [
        Protocol::DtsSs,
        Protocol::StsSs,
        Protocol::NtsSs,
        Protocol::Sync,
        Protocol::Psm,
        Protocol::Span,
    ] {
        let mut cfg = ExperimentConfig::quick(protocol, workload.clone(), 7);
        cfg.duration = SimDuration::from_secs(60);
        let result = runner::run_one(&cfg);
        // Q1 (query id 0) is the intrusion query.
        let q1 = &result.queries[0];
        let worst = q1.records.iter().map(|r| r.latency_s).fold(0.0, f64::max);
        let within = q1
            .records
            .iter()
            .filter(|r| r.latency_s <= deadline_s)
            .count();
        let total = q1.records.len().max(1);
        let ok = worst <= deadline_s;
        println!(
            "{:<10} {:>5.1}%  {:>8.4}s  {:>8.4}s   {:>4}/{:<4}    {}",
            protocol.label(),
            result.avg_duty_cycle_pct(),
            q1.latency.mean(),
            worst,
            within,
            total,
            if ok {
                "meets deadline"
            } else {
                "MISSES deadline"
            },
        );
    }
    println!();
    println!("ESSAT protocols meet the deadline at a fraction of the backbone's");
    println!("energy; SYNC and PSM buffer reports across sleep windows and pay");
    println!("for it in worst-case latency.");
}
