//! Beyond trees: Safe Sleep on a peer-to-peer periodic flow.
//!
//! The paper notes that "ESSAT can also be extended to support other
//! communication patterns such as peer-to-peer communication or data
//! dissemination". This example demonstrates that extension with the
//! library pieces directly: two peers exchange periodic heartbeats
//! (request at `φ + k·P`, reply right after), and each runs its own
//! [`SafeSleep`] instance and radio — no routing tree, no query service,
//! no MAC. The composition shows the `essat-core` scheduler is genuinely
//! local: give it send/receive expectations, and it sleeps the radio
//! safely for *any* workload with known timing.
//!
//! ```text
//! cargo run --release --example p2p_safe_sleep
//! ```

use essat::core::safe_sleep::{SafeSleep, SleepDecision};
use essat::net::ids::NodeId;
use essat::net::radio::{Radio, RadioParams, TransitionOutcome};
use essat::query::model::QueryId;
use essat::sim::engine::{Context, Engine, Model};
use essat::sim::queue::EventId;
use essat::sim::time::{SimDuration, SimTime};

const PERIOD: SimDuration = SimDuration::from_millis(500);
const HOP: SimDuration = SimDuration::from_micros(600); // one frame on the air
const RUN: SimDuration = SimDuration::from_secs(120);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Peer 0 transmits its round-`k` heartbeat.
    Request { k: u64 },
    /// The heartbeat reaches peer 1.
    RequestArrives { k: u64 },
    /// The reply reaches peer 0.
    ReplyArrives { k: u64 },
    /// A radio finished a power transition.
    RadioDone { peer: usize },
    /// A Safe-Sleep wake-up fired.
    Wake { peer: usize },
}

struct Peers {
    radio: [Radio; 2],
    ss: [SafeSleep; 2],
    /// Pending wake-up per peer: re-planning a sleep cancels the old
    /// wake event outright instead of letting it fire stale.
    wake_ev: [Option<EventId>; 2],
    rounds_ok: u64,
    missed: u64,
}

const FLOW: QueryId = QueryId::new(0);
const PEER0: NodeId = NodeId::new(0);
const PEER1: NodeId = NodeId::new(1);

impl Peers {
    /// Re-evaluate one peer's sleep decision, exactly as the node stack
    /// does in the full simulator.
    fn reconsider(&mut self, peer: usize, ctx: &mut Context<'_, Ev>) {
        if !self.radio[peer].is_active() {
            return;
        }
        if let SleepDecision::Sleep { start_wake_at, .. } = self.ss[peer].decide(ctx.now()) {
            let turn_off = self.radio[peer].params().turn_off;
            if start_wake_at <= ctx.now() + turn_off {
                return;
            }
            let d = self.radio[peer].begin_sleep(ctx.now()).expect("active");
            ctx.schedule_after(d, Ev::RadioDone { peer });
            if let Some(old) = self.wake_ev[peer].take() {
                ctx.cancel(old);
            }
            self.wake_ev[peer] = Some(ctx.schedule_at(start_wake_at, Ev::Wake { peer }));
        }
    }
}

impl Model for Peers {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Context<'_, Ev>) {
        match ev {
            Ev::Request { k } => {
                // The heartbeat goes on the air now and lands HOP later;
                // the reply comes straight back.
                ctx.schedule_after(HOP, Ev::RequestArrives { k });
                // Peer 0 now expects: its next send a period out, and
                // the reply two hops from now. The reply expectation is
                // what keeps it awake (Busy) through the exchange.
                self.ss[0].update_next_send(FLOW, ctx.now() + PERIOD);
                self.ss[0].update_next_receive(FLOW, PEER1, ctx.now() + 2 * HOP);
                ctx.schedule_at(ctx.now() + PERIOD, Ev::Request { k: k + 1 });
                self.reconsider(0, ctx);
            }
            Ev::RequestArrives { k } => {
                if self.radio[1].is_active() {
                    ctx.schedule_after(HOP, Ev::ReplyArrives { k });
                } else {
                    self.missed += 1;
                }
                // Peer 1's next reception is one period after this one
                // (the request left HOP ago).
                self.ss[1].update_next_receive(FLOW, PEER0, ctx.now() - HOP + PERIOD + HOP);
                self.reconsider(1, ctx);
            }
            Ev::ReplyArrives { k: _ } => {
                if self.radio[0].is_active() {
                    self.rounds_ok += 1;
                } else {
                    self.missed += 1;
                }
                // Exchange over: peer 0's only remaining duty is the
                // next request; expect the next reply two hops after it.
                let next_send = ctx.now() - 2 * HOP + PERIOD;
                self.ss[0].update_next_receive(FLOW, PEER1, next_send + 2 * HOP);
                self.reconsider(0, ctx);
            }
            Ev::RadioDone { peer } => {
                if let TransitionOutcome::OffWakeQueued =
                    self.radio[peer].finish_transition(ctx.now())
                {
                    let d = self.radio[peer].begin_wake(ctx.now()).expect("off");
                    ctx.schedule_after(d, Ev::RadioDone { peer });
                }
            }
            Ev::Wake { peer } => {
                // Superseded wakes were cancelled on the queue, so a
                // dispatch is always the planned one.
                self.wake_ev[peer] = None;
                if self.radio[peer].is_off() {
                    let d = self.radio[peer].begin_wake(ctx.now()).expect("off");
                    ctx.schedule_after(d, Ev::RadioDone { peer });
                }
            }
        }
    }
}

fn main() {
    let params = RadioParams::mica2();
    let t_be = params.break_even();
    let t_on = params.turn_on;

    let mut peers = Peers {
        radio: [Radio::new(params), Radio::new(params)],
        ss: [SafeSleep::new(t_be, t_on), SafeSleep::new(t_be, t_on)],
        wake_ev: [None, None],
        rounds_ok: 0,
        missed: 0,
    };
    // Initial expectations: peer 0 sends at φ; peer 1 hears HOP later.
    let phi = SimTime::from_millis(100);
    peers.ss[0].update_next_send(FLOW, phi);
    peers.ss[1].update_next_receive(FLOW, PEER0, phi + HOP);

    let mut engine = Engine::new(peers);
    engine.schedule_at(phi, Ev::Request { k: 0 });
    engine.run_until(SimTime::ZERO + RUN);

    let mut model = engine.into_model();
    println!(
        "peer-to-peer heartbeat under Safe Sleep ({}s, period {}):",
        RUN.as_secs_f64(),
        PERIOD
    );
    for (i, r) in model.radio.iter_mut().enumerate() {
        r.settle(SimTime::ZERO + RUN);
        println!(
            "  peer {i}: duty {:5.2}%  sleeps {:4}  energy {:.4} J",
            100.0 * r.duty_cycle(),
            r.sleep_intervals().len(),
            r.energy_j(),
        );
    }
    println!(
        "  rounds completed {}  exchanges missed {}",
        model.rounds_ok, model.missed
    );
    assert_eq!(model.missed, 0, "Safe Sleep must never miss an exchange");
    assert!(model.rounds_ok > 200, "most rounds must complete");
    println!();
    println!("both radios idle around 1% duty with zero missed exchanges —");
    println!("the scheduler needs only timing expectations, not a routing tree.");
}
